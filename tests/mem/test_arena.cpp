// Arena lifecycle: bump allocation and alignment, reset semantics
// (reuse-after-reset bit-identity of the data path, watermark growth and slab
// consolidation, reuse_ratio convergence), the pmr memory_resource contract
// consumed by Tensor/KvCache/RowNormWorkspace, node/interleave binding as a
// crash-free hint, and the thread-local ScratchScope routing with
// HAAN_NUMA=off falling back to the legacy heap path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "mem/arena.hpp"
#include "mem/scratch.hpp"
#include "mem/topology.hpp"

namespace haan::mem {
namespace {

TEST(Arena, AllocationsRespectAlignment) {
  Arena arena;
  for (const std::size_t alignment : {1u, 2u, 8u, 16u, 64u, 256u, 4096u}) {
    void* p = arena.allocate(3, alignment);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignment, 0u)
        << "alignment " << alignment;
  }
  EXPECT_EQ(arena.stats().allocations, 7u);
}

TEST(Arena, ReuseAfterResetIsBitIdentical) {
  // The same allocation sequence replayed after reset() lands on the same
  // slab bytes and computes the same values — the property the serving path
  // relies on when it recycles a worker's scratch arena pack after pack.
  Arena arena(ArenaOptions{std::size_t{1} << 16});
  std::vector<float> first_cycle;
  void* first_base = nullptr;
  for (int cycle = 0; cycle < 3; ++cycle) {
    std::span<float> a = arena.allocate_span<float>(512);
    std::span<float> b = arena.allocate_span<float>(256);
    if (cycle == 0) first_base = a.data();
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<float>(i) * 0.25f + 1.0f;
    }
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = a[i] - a[i + 256];
    if (cycle == 0) {
      first_cycle.assign(b.begin(), b.end());
    } else {
      EXPECT_EQ(a.data(), first_base) << "cycle " << cycle;
      EXPECT_EQ(std::memcmp(b.data(), first_cycle.data(),
                            b.size() * sizeof(float)),
                0)
          << "cycle " << cycle;
    }
    arena.reset();
  }
  EXPECT_EQ(arena.stats().resets, 3u);
}

TEST(Arena, WatermarkGrowthConsolidatesAndReuseConverges) {
  // Start far below the workload's footprint: the first cycle maps extra
  // slabs; reset() consolidates to one slab covering the peak, after which
  // identical cycles never map again and reuse_ratio climbs toward 1.
  Arena arena(ArenaOptions{std::size_t{1} << 12});  // one page
  const auto cycle = [&arena] {
    for (int i = 0; i < 8; ++i) arena.allocate(std::size_t{1} << 14);
    arena.reset();
  };
  cycle();
  const ArenaStats warm = arena.stats();
  EXPECT_GT(warm.slab_allocations, 0u);
  EXPECT_GE(warm.peak_bytes, 8u * (std::size_t{1} << 14));
  EXPECT_GE(warm.reserved_bytes, warm.peak_bytes);

  for (int i = 0; i < 32; ++i) cycle();
  const ArenaStats steady = arena.stats();
  EXPECT_EQ(steady.slab_allocations, warm.slab_allocations)
      << "post-consolidation cycles must not map new slabs";
  EXPECT_GE(steady.reuse_ratio(), 0.95);
  EXPECT_EQ(steady.used_bytes, 0u);  // just reset
  EXPECT_EQ(steady.allocations, 33u * 8u);
}

TEST(Arena, NodeAndInterleaveBindingAreCrashFreeHints) {
  // mbind failures (sandbox, single node, bogus node id) are ignored by
  // contract: allocation and first-touch must work under every option.
  for (const ArenaOptions options :
       {ArenaOptions{std::size_t{1} << 16, 0, false},
        ArenaOptions{std::size_t{1} << 16, -1, true},
        ArenaOptions{std::size_t{1} << 16, 999, false}}) {
    Arena arena(options);
    std::span<double> s = arena.allocate_span<double>(1024);
    for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<double>(i);
    EXPECT_EQ(s[1023], 1023.0);
  }
}

TEST(Arena, PmrContainersAllocateFromArenaAndOutliveDeallocate) {
  Arena arena;
  {
    std::pmr::vector<float> v(&arena);
    v.reserve(10);
    for (int i = 0; i < 1000; ++i) v.push_back(static_cast<float>(i));
    EXPECT_EQ(v[999], 999.0f);
    // Growth reallocations went through do_allocate; do_deallocate is a no-op
    // so the discarded buffers just stay bumped.
    EXPECT_GT(arena.stats().allocations, 1u);
    EXPECT_GE(arena.stats().used_bytes, 1000u * sizeof(float));
  }
  // Vector destruction "freed" into the no-op; the arena still rewinds clean.
  arena.reset();
  EXPECT_EQ(arena.stats().used_bytes, 0u);
}

TEST(ScratchScope, RoutesCurrentResourceAndNests) {
  EXPECT_EQ(current_scratch(), nullptr);
  EXPECT_EQ(current_resource(), std::pmr::get_default_resource());
  Arena outer_arena, inner_arena;
  {
    ScratchScope outer(&outer_arena);
    EXPECT_EQ(current_scratch(), &outer_arena);
    EXPECT_EQ(current_resource(), &outer_arena);
    {
      ScratchScope inner(&inner_arena);
      EXPECT_EQ(current_scratch(), &inner_arena);
    }
    EXPECT_EQ(current_scratch(), &outer_arena);
    {
      // nullptr scope = mode-agnostic no-op: routing stays untouched.
      ScratchScope noop(nullptr);
      EXPECT_EQ(current_scratch(), &outer_arena);
    }
  }
  EXPECT_EQ(current_scratch(), nullptr);
  EXPECT_EQ(current_resource(), std::pmr::get_default_resource());
}

TEST(ScratchScope, StealAssignKeepsArenaBufferWithoutCopying) {
  Arena arena;
  std::pmr::vector<float> src(&arena);
  src.assign(256, 3.5f);
  const float* buffer = src.data();
  std::pmr::vector<float> dst;  // default resource — pmr move-assign would copy
  steal_assign(dst, std::move(src));
  EXPECT_EQ(dst.data(), buffer);
  EXPECT_EQ(dst.size(), 256u);
  EXPECT_EQ(dst[255], 3.5f);
  EXPECT_EQ(dst.get_allocator().resource(), &arena);
}

TEST(NumaMode, OffDisablesPlacementAndRestores) {
  set_numa_mode_override(NumaMode::kOff);
  EXPECT_EQ(numa_mode(), NumaMode::kOff);
  EXPECT_FALSE(placement_enabled());
  // HAAN_NUMA=off means the legacy allocator path: call sites that gate arena
  // creation on placement_enabled() build none, and a nullptr ScratchScope
  // leaves every allocation on the default resource.
  EXPECT_EQ(current_resource(), std::pmr::get_default_resource());

  set_numa_mode_override(NumaMode::kAuto);
  EXPECT_TRUE(placement_enabled());
  set_numa_mode_override(NumaMode::kInterleave);
  EXPECT_EQ(numa_mode(), NumaMode::kInterleave);
  EXPECT_TRUE(placement_enabled());
  clear_numa_mode_override();
}

}  // namespace
}  // namespace haan::mem
