// Topology discovery: cpulist parsing, sysfs-tree discovery against a fake
// root, the single-node fallback, CPU->node lookups and round-robin slot
// wrapping, and the HAAN_NUMA mode parsing/override semantics the serving
// stack and benches gate placement on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mem/topology.hpp"

namespace haan::mem {
namespace {

namespace fs = std::filesystem;

/// Writes a fake /sys/devices/system/node tree under a fresh temp directory.
class FakeSysfs {
 public:
  FakeSysfs() {
    root_ = fs::temp_directory_path() /
            ("haan_topo_test_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~FakeSysfs() { fs::remove_all(root_); }

  void add_node(int id, const std::string& cpulist) {
    const fs::path dir = root_ / ("node" + std::to_string(id));
    fs::create_directories(dir);
    std::ofstream(dir / "cpulist") << cpulist << "\n";
  }

  std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

TEST(ParseCpuList, RangesSinglesAndMixes) {
  EXPECT_EQ(parse_cpu_list("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpu_list("5"), (std::vector<int>{5}));
  EXPECT_EQ(parse_cpu_list("0-1"), (std::vector<int>{0, 1}));
  EXPECT_EQ(parse_cpu_list("2,0"), (std::vector<int>{0, 2}));  // sorted
  EXPECT_EQ(parse_cpu_list("  4-5 \n"), (std::vector<int>{4, 5}));
}

TEST(ParseCpuList, MalformedSegmentsAreSkipped) {
  EXPECT_TRUE(parse_cpu_list("").empty());
  EXPECT_TRUE(parse_cpu_list("abc").empty());
  EXPECT_EQ(parse_cpu_list("abc,7"), (std::vector<int>{7}));
}

TEST(Topology, FromSysfsDiscoversNodesAndCpus) {
  FakeSysfs sysfs;
  sysfs.add_node(0, "0-3");
  sysfs.add_node(1, "4-5");
  const Topology topo = Topology::from_sysfs(sysfs.root());
  ASSERT_TRUE(topo.discovered());
  ASSERT_EQ(topo.nodes(), 2u);
  EXPECT_EQ(topo.node(0).id, 0);
  EXPECT_EQ(topo.node(0).cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.node(1).cpus, (std::vector<int>{4, 5}));
  EXPECT_EQ(topo.total_cpus(), 6u);
  EXPECT_EQ(topo.max_node_cpus(), 4u);  // the widest node bounds row chunks

  EXPECT_EQ(topo.node_of_cpu(2), 0);
  EXPECT_EQ(topo.node_of_cpu(4), 1);
  EXPECT_EQ(topo.node_of_cpu(99), -1);

  // Round-robin slots wrap within the node, never leaving it.
  EXPECT_EQ(topo.cpu_for_slot(1, 0), 4);
  EXPECT_EQ(topo.cpu_for_slot(1, 1), 5);
  EXPECT_EQ(topo.cpu_for_slot(1, 2), 4);
  EXPECT_EQ(topo.cpu_for_slot(0, 7), 3);

  EXPECT_EQ(topo.describe(), "nodes=2 cpus=[0-3][4-5]");
}

TEST(Topology, MissingTreeFallsBackToSingleNode) {
  const Topology topo = Topology::from_sysfs("/nonexistent/haan/nodes");
  EXPECT_FALSE(topo.discovered());
  ASSERT_EQ(topo.nodes(), 1u);
  EXPECT_GE(topo.node(0).cpus.size(), 1u);
  EXPECT_GE(topo.total_cpus(), 1u);
  EXPECT_EQ(topo.max_node_cpus(), topo.total_cpus());
}

TEST(Topology, EmptyNodeDirectoriesFallBackToSingleNode) {
  FakeSysfs sysfs;  // a node tree whose cpulists yield no CPUs
  sysfs.add_node(0, "garbage");
  const Topology topo = Topology::from_sysfs(sysfs.root());
  EXPECT_FALSE(topo.discovered());
  ASSERT_EQ(topo.nodes(), 1u);
  EXPECT_GE(topo.node(0).cpus.size(), 1u);
}

TEST(Topology, ProcessTopologyIsUsableOnAnyHost) {
  // Whatever this host exposes, the memoized topology must satisfy the
  // invariants indexing code relies on: >= 1 node, >= 1 CPU, consistent
  // node_of_cpu for every listed CPU.
  const Topology& topo = topology();
  ASSERT_GE(topo.nodes(), 1u);
  EXPECT_GE(topo.total_cpus(), 1u);
  EXPECT_GE(topo.max_node_cpus(), 1u);
  for (std::size_t n = 0; n < topo.nodes(); ++n) {
    for (const int cpu : topo.node(n).cpus) {
      EXPECT_EQ(topo.node_of_cpu(cpu), static_cast<int>(n));
    }
  }
  EXPECT_FALSE(topo.describe().empty());
}

TEST(NumaModeParse, AcceptedSpellings) {
  EXPECT_EQ(parse_numa_mode("off"), NumaMode::kOff);
  EXPECT_EQ(parse_numa_mode("0"), NumaMode::kOff);
  EXPECT_EQ(parse_numa_mode("auto"), NumaMode::kAuto);
  EXPECT_EQ(parse_numa_mode("1"), NumaMode::kAuto);
  EXPECT_EQ(parse_numa_mode("interleave"), NumaMode::kInterleave);
  EXPECT_FALSE(parse_numa_mode("bogus").has_value());
  EXPECT_FALSE(parse_numa_mode("").has_value());
}

TEST(NumaModeParse, ToStringRoundTrips) {
  for (const NumaMode mode :
       {NumaMode::kOff, NumaMode::kAuto, NumaMode::kInterleave}) {
    EXPECT_EQ(parse_numa_mode(to_string(mode)), mode);
  }
}

TEST(NumaModeOverride, WinsOverEnvironmentAndClears) {
  set_numa_mode_override(NumaMode::kInterleave);
  EXPECT_EQ(numa_mode(), NumaMode::kInterleave);
  set_numa_mode_override(NumaMode::kOff);
  EXPECT_EQ(numa_mode(), NumaMode::kOff);
  EXPECT_FALSE(placement_enabled());
  clear_numa_mode_override();

  // Environment-driven again: HAAN_NUMA if set and valid, else the kAuto
  // default.
  const char* env = std::getenv("HAAN_NUMA");
  const NumaMode expected =
      (env != nullptr ? parse_numa_mode(env) : std::nullopt)
          .value_or(NumaMode::kAuto);
  EXPECT_EQ(numa_mode(), expected);
}

}  // namespace
}  // namespace haan::mem
