#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace haan::common {
namespace {

CliParser make_parser() {
  CliParser parser("test program");
  parser.add_flag("seed", "42", "random seed");
  parser.add_flag("name", "default", "a name");
  parser.add_flag("rate", "0.5", "a rate");
  parser.add_flag("verbose", "false", "verbosity");
  return parser;
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  auto parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get("name"), "default");
  EXPECT_EQ(parser.get_int("seed"), 42);
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 0.5);
  EXPECT_FALSE(parser.get_bool("verbose"));
}

TEST(Cli, EqualsSyntax) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--seed=7", "--name=haan"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_int("seed"), 7);
  EXPECT_EQ(parser.get("name"), "haan");
}

TEST(Cli, SpaceSyntax) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--rate", "0.25", "--verbose", "true"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 0.25);
  EXPECT_TRUE(parser.get_bool("verbose"));
}

TEST(Cli, UnknownFlagFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_TRUE(parser.error());
}

TEST(Cli, MissingValueFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--seed"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_TRUE(parser.error());
}

TEST(Cli, PositionalArgFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(Cli, HelpReturnsFalseWithoutError) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_FALSE(parser.error());
}

TEST(Cli, HelpListsFlags) {
  auto parser = make_parser();
  const std::string help = parser.help();
  EXPECT_NE(help.find("--seed"), std::string::npos);
  EXPECT_NE(help.find("random seed"), std::string::npos);
}

TEST(Cli, BooleanSpellings) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose=yes"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(parser.get_bool("verbose"));
}

}  // namespace
}  // namespace haan::common
