#include "common/table.hpp"

#include <gtest/gtest.h>

namespace haan::common {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, SeparatorDoesNotCountAsRow) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ColumnsAlignAcrossRows) {
  Table t({"k", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer-key", "2"});
  const std::string out = t.render();
  // Every rendered line between rules must have the same length.
  std::size_t line_len = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t end = out.find('\n', pos);
    const std::size_t len = end - pos;
    if (line_len == 0) line_len = len;
    EXPECT_EQ(len, line_len);
    pos = end + 1;
  }
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Table, FormatRatio) {
  EXPECT_EQ(format_ratio(11.728), "11.73x");
  EXPECT_EQ(format_ratio(1.0, 1), "1.0x");
}

TEST(Table, FormatPercent) {
  EXPECT_EQ(format_percent(0.049), "4.9%");
  EXPECT_EQ(format_percent(0.125, 1), "12.5%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Table, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1536), "1,536");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(-84000), "-84,000");
}

}  // namespace
}  // namespace haan::common
