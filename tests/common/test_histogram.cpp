// LogHistogram contract: exact count/sum/mean/extremes, quantiles within one
// bucket ratio of the exact nearest-rank sample (the accuracy bound the
// serving metrics advertise), constant memory, merge additivity, and sane
// clamping at the range edges.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/histogram.hpp"

namespace haan::common {
namespace {

/// Exact nearest-rank quantile over retained samples: the oracle the
/// histogram is measured against.
double nearest_rank(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  if (rank > 0) --rank;
  return samples[rank];
}

TEST(LogHistogram, EmptyReportsZeros) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, CountSumExtremesAreExact) {
  LogHistogram h;
  double sum = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    h.record(static_cast<double>(i));
    sum += i;
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.mean(), sum / 1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
}

TEST(LogHistogram, QuantilesWithinOneBucketRatioOfNearestRank) {
  // Deterministic multiplicative stream spanning ~6 decades — the regime the
  // latency histograms see (1us .. seconds).
  LogHistogram h;
  std::vector<double> samples;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double unit = static_cast<double>(state >> 11) / 9007199254740992.0;
    const double value = std::pow(10.0, 6.0 * unit);  // 1 .. 1e6
    h.record(value);
    samples.push_back(value);
  }
  const double ratio = h.bucket_ratio();
  for (const double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    const double exact = nearest_rank(samples, q);
    const double approx = h.quantile(q);
    EXPECT_LE(approx, exact * ratio) << "q=" << q;
    EXPECT_GE(approx, exact / ratio) << "q=" << q;
  }
  // q=1 is the exact maximum, not a bucket midpoint.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), *std::max_element(samples.begin(), samples.end()));
}

TEST(LogHistogram, SingleSampleIsEveryQuantile) {
  LogHistogram h;
  h.record(1234.5);
  // All quantiles clamp to the exact extremes of a single sample.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1234.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1234.5);
  EXPECT_DOUBLE_EQ(h.max(), 1234.5);
}

TEST(LogHistogram, OutOfRangeValuesClampIntoEdgeBuckets) {
  LogHistogram::Config config;
  config.min_value = 1.0;
  config.max_value = 1e3;
  config.buckets_per_decade = 10;
  LogHistogram h(config);
  h.record(0.0);      // below range -> bucket 0
  h.record(-5.0);     // negative -> bucket 0
  h.record(1e9);      // above range -> overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);   // extremes stay exact even when clamped
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  // Quantiles clamp to the exact extremes, never invent values outside them.
  EXPECT_GE(h.quantile(0.01), -5.0);
  EXPECT_LE(h.quantile(0.999), 1e9);
}

TEST(LogHistogram, MemoryIsConstantInSampleCount) {
  LogHistogram a;
  const std::size_t before = a.memory_bytes();
  for (int i = 0; i < 500000; ++i) a.record(1.0 + (i % 100000));
  EXPECT_EQ(a.memory_bytes(), before);
  // ~48/decade over 9 decades: a few hundred buckets, well under 8 KiB.
  EXPECT_LT(a.memory_bytes(), 8u * 1024u);
}

TEST(LogHistogram, MergeIsAdditive) {
  LogHistogram a, b, both;
  for (int i = 1; i <= 100; ++i) {
    a.record(i);
    both.record(i);
  }
  for (int i = 1000; i <= 2000; i += 10) {
    b.record(i);
    both.record(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  EXPECT_DOUBLE_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.min(), both.min());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), both.quantile(q)) << "q=" << q;
  }
}

TEST(LogHistogram, ResetDropsSamplesKeepsLayout) {
  LogHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  const std::size_t buckets = h.bucket_count();
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.bucket_count(), buckets);
  h.record(7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.0);
}

}  // namespace
}  // namespace haan::common
