#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace haan::common {
namespace {

TEST(RunningMoments, MatchesClosedForm) {
  RunningMoments m;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  for (const double x : xs) m.add(x);
  EXPECT_EQ(m.count(), 5u);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_DOUBLE_EQ(m.variance(), 2.0);
  EXPECT_DOUBLE_EQ(m.stddev(), std::sqrt(2.0));
}

TEST(RunningMoments, EmptyIsZero) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance(), 0.0);
}

TEST(RunningMoments, SingleValue) {
  RunningMoments m;
  m.add(7.5);
  EXPECT_DOUBLE_EQ(m.mean(), 7.5);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(RunningMoments, AgreesWithBatchVariance) {
  Rng rng(3);
  std::vector<double> xs(1000);
  RunningMoments m;
  for (auto& x : xs) {
    x = rng.gaussian(2.0, 3.0);
    m.add(x);
  }
  EXPECT_NEAR(m.mean(), mean_of(xs), 1e-12);
  EXPECT_NEAR(m.variance(), variance_of(xs), 1e-9);
}

TEST(Pearson, PerfectPositive) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{5, 5, 5};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Pearson, IndependentNearZero) {
  Rng rng(4);
  std::vector<double> xs(5000), ys(5000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.gaussian();
    ys[i] = rng.gaussian();
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.05);
}

TEST(Pearson, VsIndexMatchesExplicit) {
  const std::vector<double> ys{3.0, 1.0, 4.0, 1.0, 5.0};
  const std::vector<double> xs{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson_vs_index(ys), pearson(xs, ys));
}

TEST(FitLine, RecoversExactLine) {
  std::vector<double> xs(20), ys(20);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i);
    ys[i] = -0.75 * xs[i] + 3.25;
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, -0.75, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.25, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineApproximatelyRecovered) {
  Rng rng(5);
  std::vector<double> xs(500), ys(500);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i) / 10.0;
    ys[i] = 2.0 * xs[i] - 1.0 + rng.gaussian(0.0, 0.1);
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.02);
  EXPECT_NEAR(fit.intercept, -1.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLine, ConstantXGivesFlatFit) {
  const std::vector<double> xs{2, 2, 2};
  const std::vector<double> ys{1, 2, 3};
  const LineFit fit = fit_line(xs, ys);
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(SpanStats, MeanVarianceRms) {
  const std::vector<double> xs{1.0, -1.0, 1.0, -1.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 0.0);
  EXPECT_DOUBLE_EQ(variance_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(rms_of(xs), 1.0);
}

TEST(SpanStats, GeometricMean) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean_of(xs), 4.0, 1e-12);
}

TEST(SpanStats, MaxAbsDiff) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.5, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
}

TEST(SpanStats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({5.0}), 5.0);
}

/// Property: Pearson is invariant under affine transforms of either series.
class PearsonAffineInvariance : public ::testing::TestWithParam<double> {};

TEST_P(PearsonAffineInvariance, ScaleAndShiftInvariant) {
  Rng rng(6);
  std::vector<double> xs(200), ys(200);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.gaussian();
    ys[i] = 0.5 * xs[i] + rng.gaussian(0.0, 0.5);
  }
  const double base = pearson(xs, ys);
  const double scale = GetParam();
  std::vector<double> ys2(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) ys2[i] = scale * ys[i] + 17.0;
  const double transformed = pearson(xs, ys2);
  if (scale > 0) {
    EXPECT_NEAR(transformed, base, 1e-9);
  } else {
    EXPECT_NEAR(transformed, -base, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, PearsonAffineInvariance,
                         ::testing::Values(0.001, 0.5, 2.0, 1000.0, -1.0, -3.5));

}  // namespace
}  // namespace haan::common
