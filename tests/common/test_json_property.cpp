// Round-trip fuzzing of the JSON substrate: any document the generator can
// build must survive dump -> parse -> dump bit-identically.
#include <gtest/gtest.h>

#include "common/json_lite.hpp"
#include "common/rng.hpp"

namespace haan::common {
namespace {

Json random_json(Rng& rng, int depth) {
  const std::uint64_t kind = rng.uniform_index(depth <= 0 ? 4 : 6);
  switch (kind) {
    case 0:
      return Json();
    case 1:
      return Json(rng.uniform_index(2) == 0);
    case 2: {
      // Mix of integers and awkward doubles.
      if (rng.uniform_index(2) == 0) {
        return Json(static_cast<long long>(rng.uniform_index(1000000)) - 500000);
      }
      return Json(rng.gaussian(0.0, 1e6));
    }
    case 3: {
      std::string s;
      const std::size_t len = rng.uniform_index(20);
      for (std::size_t i = 0; i < len; ++i) {
        const char alphabet[] = "abcXYZ019 _\"\\\n\t{}[]:,";
        s += alphabet[rng.uniform_index(sizeof(alphabet) - 1)];
      }
      return Json(std::move(s));
    }
    case 4: {
      Json::Array array;
      const std::size_t len = rng.uniform_index(5);
      for (std::size_t i = 0; i < len; ++i) array.push_back(random_json(rng, depth - 1));
      return Json(std::move(array));
    }
    default: {
      Json::Object object;
      const std::size_t len = rng.uniform_index(5);
      for (std::size_t i = 0; i < len; ++i) {
        object["key" + std::to_string(rng.uniform_index(100))] =
            random_json(rng, depth - 1);
      }
      return Json(std::move(object));
    }
  }
}

class JsonFuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzzSweep, CompactRoundTripIsStable) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const Json doc = random_json(rng, 4);
    const std::string first = doc.dump();
    const auto parsed = Json::parse(first);
    ASSERT_TRUE(parsed.has_value()) << first;
    EXPECT_EQ(parsed->dump(), first);
  }
}

TEST_P(JsonFuzzSweep, PrettyAndCompactAgree) {
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 300; ++i) {
    const Json doc = random_json(rng, 3);
    const auto from_pretty = Json::parse(doc.dump_pretty());
    ASSERT_TRUE(from_pretty.has_value());
    EXPECT_EQ(from_pretty->dump(), doc.dump());
  }
}

TEST_P(JsonFuzzSweep, TruncatedDocumentsNeverParse) {
  Rng rng(GetParam() + 2);
  for (int i = 0; i < 300; ++i) {
    Json::Object object;
    object["a"] = random_json(rng, 2);
    const std::string text = Json(std::move(object)).dump();
    // Any strict prefix of an object document is malformed.
    const std::size_t cut = 1 + rng.uniform_index(text.size() - 1);
    EXPECT_FALSE(Json::parse(text.substr(0, cut)).has_value())
        << text << " cut at " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzSweep, ::testing::Values(7u, 77u, 777u));

}  // namespace
}  // namespace haan::common
