#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace haan::common {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianScaledMoments) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.fork();
  // Child stream should not replay the parent stream.
  Rng parent_copy(13);
  parent_copy.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, FillGaussianFillsEverything) {
  Rng rng(14);
  std::vector<float> values(257, 0.0f);
  rng.fill_gaussian(values, 10.0, 0.001);
  for (const float v : values) EXPECT_NEAR(v, 10.0f, 0.1f);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(15);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(16);
  const auto perm = rng.permutation(50);
  std::size_t fixed_points = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 10u);  // expected ~1
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, GaussianCacheKeepsDeterminism) {
  // Interleaving gaussian() (which caches one value) with next_u64() must be
  // reproducible for any seed.
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(a.gaussian(), b.gaussian());
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xDEADBEEFULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace haan::common
