#include "common/json_lite.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace haan::common {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.5")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParseNested) {
  const auto doc = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(doc.has_value());
  const auto& a = *doc->find("a");
  ASSERT_TRUE(a.is_array());
  EXPECT_EQ(a.as_array().size(), 3u);
  EXPECT_TRUE(a.as_array()[2].find("b")->as_bool());
  EXPECT_EQ(doc->find("c")->as_string(), "x");
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\": }").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("12 34").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
}

TEST(Json, EscapesRoundTrip) {
  Json::Object object;
  object["key\n\"quoted\""] = Json(std::string("tab\there"));
  const Json doc{std::move(object)};
  const auto parsed = Json::parse(doc.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("key\n\"quoted\"")->as_string(), "tab\there");
}

TEST(Json, UnicodeEscapeDecodes) {
  const auto doc = Json::parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "A\xC3\xA9");  // "Aé" in UTF-8
}

TEST(Json, DumpRoundTripPreservesStructure) {
  Json::Array array;
  array.push_back(Json(1.5));
  array.push_back(Json(true));
  array.push_back(Json());
  Json::Object object;
  object["list"] = Json(std::move(array));
  object["n"] = Json(42);
  const Json doc{std::move(object)};

  for (const std::string& text : {doc.dump(), doc.dump_pretty()}) {
    const auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->find("n")->as_number(), 42.0);
    const auto& list = parsed->find("list")->as_array();
    ASSERT_EQ(list.size(), 3u);
    EXPECT_DOUBLE_EQ(list[0].as_number(), 1.5);
    EXPECT_TRUE(list[1].as_bool());
    EXPECT_TRUE(list[2].is_null());
  }
}

TEST(Json, IntegersDumpWithoutDecimals) {
  EXPECT_EQ(Json(1536).dump(), "1536");
  EXPECT_EQ(Json(-3).dump(), "-3");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
}

TEST(Json, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/haan_json_test.json";
  Json::Object object;
  object["x"] = Json(3.0);
  ASSERT_TRUE(write_file(path, Json(std::move(object)).dump()));
  const auto text = read_file(path);
  ASSERT_TRUE(text.has_value());
  const auto parsed = Json::parse(*text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->find("x")->as_number(), 3.0);
  std::remove(path.c_str());
}

TEST(Json, ReadMissingFileReturnsNullopt) {
  EXPECT_FALSE(read_file("/nonexistent/path/file.json").has_value());
}

TEST(Json, NumberPrecisionSurvivesRoundTrip) {
  const double value = -0.010223456789012345;
  const auto parsed = Json::parse(Json(value).dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->as_number(), value);
}

}  // namespace
}  // namespace haan::common
