// Logging format/sink contract: the JSON-lines format emits one parseable
// object per line with ts_us/level/component/msg fields (round-tripping
// through json_lite), the human format keeps its "[haan LEVEL]" shape with an
// optional component prefix, and set_log_sink captures lines from any format.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json_lite.hpp"
#include "common/logging.hpp"

namespace haan::common {
namespace {

/// Restores global logger state (threshold, format, sink) after each test so
/// cases can't leak configuration into each other.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kDebug);
    set_log_sink([this](std::string_view line) {
      lines_.emplace_back(line);
    });
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_format(LogFormat::kHuman);
    set_log_level(LogLevel::kInfo);
  }

  std::vector<std::string> lines_;
};

TEST_F(LoggingTest, HumanFormatKeepsLegacyShape) {
  set_log_format(LogFormat::kHuman);
  log(LogLevel::kInfo, "plain message");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0], "[haan INFO ] plain message");  // tag padded to width 5
}

TEST_F(LoggingTest, HumanFormatPrefixesComponent) {
  set_log_format(LogFormat::kHuman);
  log(LogLevel::kWarn, "serve", "queue nearly full");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0], "[haan WARN ] serve: queue nearly full");
}

TEST_F(LoggingTest, JsonFormatEmitsParseableObjects) {
  set_log_format(LogFormat::kJson);
  log(LogLevel::kInfo, "stats", "t=1.0s completed=10");
  log(LogLevel::kError, "", "bare error");
  ASSERT_EQ(lines_.size(), 2u);

  const auto first = Json::parse(lines_[0]);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first->is_object());
  EXPECT_EQ(first->find("level")->as_string(), "info");
  EXPECT_EQ(first->find("component")->as_string(), "stats");
  EXPECT_EQ(first->find("msg")->as_string(), "t=1.0s completed=10");
  EXPECT_GT(first->find("ts_us")->as_number(), 0.0);

  const auto second = Json::parse(lines_[1]);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->find("level")->as_string(), "error");
  EXPECT_EQ(second->find("component"), nullptr);  // empty component omitted
}

TEST_F(LoggingTest, JsonFormatEscapesMessageContent) {
  set_log_format(LogFormat::kJson);
  log(LogLevel::kInfo, "test", "quote \" backslash \\ newline \n done");
  ASSERT_EQ(lines_.size(), 1u);
  const auto parsed = Json::parse(lines_[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("msg")->as_string(),
            "quote \" backslash \\ newline \n done");
}

TEST_F(LoggingTest, ThresholdAppliesInBothFormats) {
  set_log_level(LogLevel::kWarn);
  set_log_format(LogFormat::kJson);
  log(LogLevel::kInfo, "serve", "dropped");
  set_log_format(LogFormat::kHuman);
  log(LogLevel::kDebug, "dropped too");
  log(LogLevel::kError, "kept");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0], "[haan ERROR] kept");
}

TEST_F(LoggingTest, StreamMacroCarriesComponent) {
  set_log_format(LogFormat::kJson);
  HAAN_LOG_INFO_C("obs") << "events=" << 42;
  ASSERT_EQ(lines_.size(), 1u);
  const auto parsed = Json::parse(lines_[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("component")->as_string(), "obs");
  EXPECT_EQ(parsed->find("msg")->as_string(), "events=42");
}

}  // namespace
}  // namespace haan::common
