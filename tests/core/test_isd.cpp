#include "core/isd.hpp"

#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/norm_ref.hpp"

namespace haan::core {
namespace {

TEST(ExactIsd, LayerNormUsesVariance) {
  const std::vector<float> z{1.0f, 3.0f};  // mean 2, var 1
  EXPECT_NEAR(exact_isd(z, model::NormKind::kLayerNorm, 0.0), 1.0, 1e-12);
}

TEST(ExactIsd, RmsNormUsesSecondMoment) {
  const std::vector<float> z{3.0f, 4.0f};  // ms = 12.5
  EXPECT_NEAR(exact_isd(z, model::NormKind::kRMSNorm, 0.0), 1.0 / std::sqrt(12.5),
              1e-12);
}

TEST(ExactIsd, EpsKeepsFinite) {
  const std::vector<float> z(8, 2.0f);  // zero variance
  const double isd = exact_isd(z, model::NormKind::kLayerNorm, 1e-5);
  EXPECT_TRUE(std::isfinite(isd));
  EXPECT_NEAR(isd, 1.0 / std::sqrt(1e-5), 1e-6);
}

TEST(IsdTrace, RecordAndQuery) {
  IsdTrace trace(4);
  trace.begin_observation();
  trace.record(0, -1.0);
  trace.record(3, -2.0);
  EXPECT_EQ(trace.observation_count(), 1u);
  EXPECT_DOUBLE_EQ(trace.log_isd(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(trace.log_isd(0, 3), -2.0);
  EXPECT_TRUE(std::isnan(trace.log_isd(0, 1)));
}

TEST(IsdTrace, MeanSkipsNaN) {
  IsdTrace trace(2);
  trace.begin_observation();
  trace.record(0, -1.0);
  trace.record(1, -3.0);
  trace.begin_observation();
  trace.record(0, -2.0);
  trace.record(1, -5.0);
  const auto mean = trace.mean_log_isd();
  EXPECT_DOUBLE_EQ(mean[0], -1.5);
  EXPECT_DOUBLE_EQ(mean[1], -4.0);
}

TEST(IsdTrace, RecordAtTargetsSpecificObservation) {
  IsdTrace trace(2);
  trace.begin_observation();
  trace.begin_observation();
  trace.record_at(0, 0, -1.0);
  trace.record_at(1, 0, -9.0);
  EXPECT_DOUBLE_EQ(trace.log_isd(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(trace.log_isd(1, 0), -9.0);
}

TEST(CollectIsdTrace, OneObservationPerRecordedPosition) {
  auto config = model::tiny_test_model();
  model::Transformer tf(config);
  const auto corpus = random_token_corpus(config.vocab_size, 2, 8, 3);
  TraceCollectorOptions options;
  options.position_stride = 2;  // positions 0,2,4,6 -> 4 per sample
  const IsdTrace trace = collect_isd_trace(tf, corpus, options);
  EXPECT_EQ(trace.layer_count(), config.norm_layer_count());
  EXPECT_EQ(trace.observation_count(), 2u * 4u);
  // Every recorded observation covers every layer (no NaN gaps).
  const auto mean = trace.mean_log_isd();
  for (const double v : mean) EXPECT_TRUE(std::isfinite(v));
}

TEST(CollectIsdTrace, MatchesDirectObserverComputation) {
  auto config = model::tiny_test_model();
  model::Transformer tf(config);
  const auto corpus = random_token_corpus(config.vocab_size, 1, 4, 4);
  const IsdTrace trace = collect_isd_trace(tf, corpus, {});

  // Recompute one entry directly.
  model::ExactNormProvider exact;
  double expected = 0.0;
  tf.set_norm_observer([&](std::size_t layer, std::size_t pos,
                           std::span<const float> z) {
    if (layer == 1 && pos == 2) {
      expected = std::log(exact_isd(z, config.norm_kind, 1e-5));
    }
  });
  tf.forward_hidden(corpus[0], exact);
  tf.set_norm_observer({});
  EXPECT_DOUBLE_EQ(trace.log_isd(2, 1), expected);  // obs index = position
}

TEST(CollectIsdTrace, ClearsObserverAfterRun) {
  auto config = model::tiny_test_model();
  model::Transformer tf(config);
  const auto corpus = random_token_corpus(config.vocab_size, 1, 4, 5);
  collect_isd_trace(tf, corpus, {});
  // A further forward pass must not touch the (now cleared) observer.
  model::ExactNormProvider exact;
  const auto h = tf.forward_hidden(corpus[0], exact);
  EXPECT_EQ(h.shape().dim(0), 4u);
}

}  // namespace
}  // namespace haan::core
