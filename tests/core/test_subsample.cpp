#include "core/subsample.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/isd.hpp"

namespace haan::core {
namespace {

TEST(Subsample, FullVectorMatchesExact) {
  common::Rng rng(1);
  std::vector<float> z(128);
  rng.fill_gaussian(z, 1.0, 2.0);
  for (const std::size_t nsub : {std::size_t{0}, z.size(), z.size() + 50}) {
    const auto stats = subsampled_stats(z, nsub, model::NormKind::kLayerNorm, 1e-5);
    EXPECT_EQ(stats.used, z.size());
    EXPECT_NEAR(stats.isd, exact_isd(z, model::NormKind::kLayerNorm, 1e-5), 1e-9);
  }
}

TEST(Subsample, UsesExactlyThePrefix) {
  // Corrupting elements past nsub must not change the estimate (the paper's
  // "truncate the first Nsub elements" semantics, Fig 7 memory layout).
  common::Rng rng(2);
  std::vector<float> z(64);
  rng.fill_gaussian(z, 0.0, 1.0);
  const auto before = subsampled_stats(z, 16, model::NormKind::kRMSNorm, 1e-5);
  for (std::size_t i = 16; i < z.size(); ++i) z[i] = 1e6f;
  const auto after = subsampled_stats(z, 16, model::NormKind::kRMSNorm, 1e-5);
  EXPECT_EQ(before.isd, after.isd);
  EXPECT_EQ(before.used, 16u);
}

TEST(Subsample, MeanIsPrefixMean) {
  const std::vector<float> z{1.0f, 3.0f, 100.0f, 200.0f};
  const auto stats = subsampled_stats(z, 2, model::NormKind::kLayerNorm, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
}

TEST(Subsample, RmsKindIgnoresMeanInIsd) {
  const std::vector<float> z{2.0f, -2.0f, 2.0f, -2.0f};
  const auto ln = subsampled_stats(z, 4, model::NormKind::kLayerNorm, 0.0);
  const auto rms = subsampled_stats(z, 4, model::NormKind::kRMSNorm, 0.0);
  // Zero-mean input: LN variance == RMS second moment.
  EXPECT_NEAR(ln.isd, rms.isd, 1e-12);
  const std::vector<float> shifted{4.0f, 0.0f, 4.0f, 0.0f};  // mean 2
  const auto ln2 = subsampled_stats(shifted, 4, model::NormKind::kLayerNorm, 0.0);
  const auto rms2 = subsampled_stats(shifted, 4, model::NormKind::kRMSNorm, 0.0);
  EXPECT_GT(ln2.isd, rms2.isd);  // variance < second moment when mean != 0
}

TEST(Subsample, NegativeVarianceClampsToZero) {
  // A constant vector with eps=0 would give 1/0; the clamp + eps keeps it
  // finite like the hardware subtractor.
  const std::vector<float> z(16, 7.0f);
  const auto stats = subsampled_stats(z, 8, model::NormKind::kLayerNorm, 1e-5);
  EXPECT_TRUE(std::isfinite(stats.isd));
}

TEST(Subsample, RelErrorMatchesTheoreticalScaling) {
  // Relative ISD error should scale ~ 0.5 * sqrt(2(1/n - 1/N)) for Gaussian
  // inputs. Checked in aggregate over many vectors.
  common::Rng rng(3);
  const std::size_t full = 4096;
  for (const std::size_t nsub : {256u, 1024u}) {
    double sum_sq = 0.0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
      std::vector<float> z(full);
      rng.fill_gaussian(z, 0.0, 1.0);
      const double err =
          subsample_isd_rel_error(z, nsub, model::NormKind::kRMSNorm, 0.0);
      sum_sq += err * err;
    }
    const double rms_err = std::sqrt(sum_sq / trials);
    const double predicted = subsample_noise(nsub, full);
    EXPECT_NEAR(rms_err, predicted, predicted * 0.45) << "nsub=" << nsub;
  }
}

TEST(Subsample, NoiseFormula) {
  EXPECT_DOUBLE_EQ(subsample_noise(0, 128), 0.0);
  EXPECT_DOUBLE_EQ(subsample_noise(128, 128), 0.0);
  EXPECT_GT(subsample_noise(32, 128), subsample_noise(64, 128));
  // The surrogate operating point (64 of 128 -> 6.25%) is the same order as
  // the paper's (256 of 4096 -> 4.3%): within a factor of 1.5.
  EXPECT_NEAR(subsample_noise(64, 128), 0.0625, 1e-4);
  EXPECT_NEAR(subsample_noise(256, 4096), 0.0428, 1e-3);
  EXPECT_LT(subsample_noise(64, 128) / subsample_noise(256, 4096), 1.6);
}

class SubsampleMonotonicity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SubsampleMonotonicity, LargerPrefixTracksExactBetterOnAverage) {
  common::Rng rng(GetParam());
  const std::size_t n = 512;
  double err_small = 0.0, err_large = 0.0;
  for (int t = 0; t < 40; ++t) {
    std::vector<float> z(n);
    rng.fill_gaussian(z, 0.5, 1.5);
    err_small += subsample_isd_rel_error(z, 32, model::NormKind::kLayerNorm, 0.0);
    err_large += subsample_isd_rel_error(z, 256, model::NormKind::kLayerNorm, 0.0);
  }
  EXPECT_LT(err_large, err_small);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsampleMonotonicity, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace haan::core
