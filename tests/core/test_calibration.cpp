#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "model/transformer.hpp"

namespace haan::core {
namespace {

TEST(Corpus, DeterministicAndInRange) {
  const auto a = random_token_corpus(100, 5, 8, 42);
  const auto b = random_token_corpus(100, 5, 8, 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 5u);
  for (const auto& sample : a) {
    EXPECT_EQ(sample.size(), 8u);
    for (const int token : sample) {
      EXPECT_GE(token, 0);
      EXPECT_LT(token, 100);
    }
  }
}

TEST(Corpus, DifferentSeedsDiffer) {
  EXPECT_NE(random_token_corpus(100, 2, 8, 1), random_token_corpus(100, 2, 8, 2));
}

TEST(Calibration, ProducesEnabledPlanOnTinyModel) {
  model::Transformer model(model::tiny_test_model());
  CalibrationOptions options;
  options.n_samples = 2;
  options.seq_len = 8;
  options.position_stride = 4;
  options.planner.min_gap = 3;
  const CalibrationResult result = calibrate_skip_plan(model, options);
  EXPECT_TRUE(result.plan.enabled);
  EXPECT_LT(result.plan.start, result.plan.end);
  EXPECT_LT(result.plan.end, model.config().norm_layer_count());
  EXPECT_EQ(result.trace.layer_count(), model.config().norm_layer_count());
  EXPECT_GT(result.trace.observation_count(), 0u);
}

TEST(Calibration, DeterministicGivenOptions) {
  model::Transformer model(model::tiny_test_model());
  CalibrationOptions options;
  options.n_samples = 2;
  options.seq_len = 8;
  options.planner.min_gap = 3;
  const auto a = calibrate_skip_plan(model, options);
  const auto b = calibrate_skip_plan(model, options);
  EXPECT_EQ(a.plan.start, b.plan.start);
  EXPECT_EQ(a.plan.end, b.plan.end);
  EXPECT_DOUBLE_EQ(a.plan.decay, b.plan.decay);
}

TEST(PlanSerialization, JsonRoundTrip) {
  SkipPlan plan;
  plan.start = 50;
  plan.end = 60;
  plan.decay = -0.0123456789;
  plan.pearson = -0.9987;
  plan.enabled = true;
  const SkipPlan restored = skip_plan_from_json(skip_plan_to_json(plan));
  EXPECT_EQ(restored.start, plan.start);
  EXPECT_EQ(restored.end, plan.end);
  EXPECT_DOUBLE_EQ(restored.decay, plan.decay);
  EXPECT_DOUBLE_EQ(restored.pearson, plan.pearson);
  EXPECT_EQ(restored.enabled, plan.enabled);
}

TEST(PlanSerialization, FileRoundTrip) {
  SkipPlan plan;
  plan.start = 10;
  plan.end = 20;
  plan.decay = -0.05;
  plan.enabled = true;
  const std::string path = ::testing::TempDir() + "/haan_plan_test.json";
  ASSERT_TRUE(save_skip_plan(plan, path));
  const SkipPlan restored = load_skip_plan(path);
  EXPECT_EQ(restored.start, 10u);
  EXPECT_EQ(restored.end, 20u);
  EXPECT_DOUBLE_EQ(restored.decay, -0.05);
  std::remove(path.c_str());
}

TEST(PlanSerialization, DisabledPlanRoundTrips) {
  SkipPlan plan;  // disabled default
  const SkipPlan restored = skip_plan_from_json(skip_plan_to_json(plan));
  EXPECT_FALSE(restored.enabled);
}

}  // namespace
}  // namespace haan::core
