#include "core/isd_predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace haan::core {
namespace {

SkipPlan plan_10_20(double decay = -0.1) {
  SkipPlan plan;
  plan.start = 10;
  plan.end = 20;
  plan.decay = decay;
  plan.enabled = true;
  return plan;
}

TEST(IsdPredictor, ImplementsPaperEquation3) {
  IsdPredictor predictor(plan_10_20(-0.1));
  predictor.record_anchor(0, 0.5);
  // log(ISD_k) = log(ISD_i) + e * (k - i)
  for (std::size_t k = 11; k <= 20; ++k) {
    const double expected =
        std::exp(std::log(0.5) - 0.1 * static_cast<double>(k - 10));
    EXPECT_NEAR(predictor.predict(k, 0), expected, 1e-12) << "k=" << k;
  }
}

TEST(IsdPredictor, AnchorsArePerPosition) {
  IsdPredictor predictor(plan_10_20());
  predictor.record_anchor(0, 1.0);
  predictor.record_anchor(1, 2.0);
  EXPECT_NEAR(predictor.predict(11, 0), std::exp(0.0 - 0.1), 1e-12);
  EXPECT_NEAR(predictor.predict(11, 1), std::exp(std::log(2.0) - 0.1), 1e-12);
  EXPECT_EQ(predictor.anchor_count(), 2u);
}

TEST(IsdPredictor, BeginSequenceClearsAnchors) {
  IsdPredictor predictor(plan_10_20());
  predictor.record_anchor(0, 1.0);
  predictor.begin_sequence();
  EXPECT_EQ(predictor.anchor_count(), 0u);
}

TEST(IsdPredictor, FallbackUsesMeanAnchor) {
  IsdPredictor predictor(plan_10_20(0.0));
  predictor.record_anchor(0, 1.0);
  predictor.record_anchor(1, std::exp(2.0));  // log = 2
  // Position 99 has no anchor: geometric mean of anchors = exp(1).
  EXPECT_NEAR(predictor.predict(15, 99), std::exp(1.0), 1e-9);
}

TEST(IsdPredictor, SkipAndAnchorQueries) {
  IsdPredictor predictor(plan_10_20());
  EXPECT_TRUE(predictor.is_anchor(10));
  EXPECT_FALSE(predictor.is_anchor(11));
  EXPECT_FALSE(predictor.should_skip(10));
  EXPECT_TRUE(predictor.should_skip(15));
  EXPECT_FALSE(predictor.should_skip(25));
}

TEST(IsdPredictor, DisabledPlanNeverSkips) {
  SkipPlan plan;  // disabled
  IsdPredictor predictor(plan);
  EXPECT_FALSE(predictor.should_skip(5));
  EXPECT_FALSE(predictor.is_anchor(0));
}

TEST(IsdPredictor, Fp16ModeCloseToExact) {
  IsdPredictor exact(plan_10_20(-0.05), /*fp16=*/false);
  IsdPredictor half(plan_10_20(-0.05), /*fp16=*/true);
  exact.record_anchor(0, 0.037);
  half.record_anchor(0, 0.037);
  for (std::size_t k = 11; k <= 20; ++k) {
    const double e = exact.predict(k, 0);
    const double h = half.predict(k, 0);
    EXPECT_NEAR(h / e, 1.0, 5e-3) << "k=" << k;  // FP16 has ~0.05% per-op error
  }
}

TEST(IsdPredictor, PredictionErrorGrowsWithDistanceOnMismatchedSlope) {
  // If the true decay differs from the plan's, the relative error grows with
  // (k - anchor): the reason Table II's early/misfitted ranges hurt.
  const double true_decay = -0.08;
  IsdPredictor predictor(plan_10_20(-0.02));
  predictor.record_anchor(0, 1.0);
  double prev_error = 0.0;
  for (std::size_t k = 11; k <= 20; ++k) {
    const double truth = std::exp(true_decay * static_cast<double>(k - 10));
    const double error = std::abs(predictor.predict(k, 0) - truth) / truth;
    EXPECT_GE(error, prev_error);
    prev_error = error;
  }
  EXPECT_GT(prev_error, 0.5);
}

}  // namespace
}  // namespace haan::core
