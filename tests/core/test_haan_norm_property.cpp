// Randomized semantic properties of the HAAN normalization operator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/haan_norm.hpp"
#include "tensor/norm_ref.hpp"
#include "tensor/ops.hpp"

namespace haan::core {
namespace {

std::vector<float> random_vector(common::Rng& rng, std::size_t n) {
  std::vector<float> z(n);
  rng.fill_gaussian(z, rng.uniform(-1.0, 1.0), rng.uniform(0.5, 3.0));
  return z;
}

class HaanNormPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HaanNormPropertySweep, RmsNormScaleInvariance) {
  // RMSNorm(c * z) == RMSNorm(z) for c > 0 — and HAAN preserves this even
  // with subsampling, because the estimated ISD scales by exactly 1/c.
  common::Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const std::size_t n = 64 + rng.uniform_index(256);
    HaanConfig config;
    config.use_fast_invsqrt = false;  // invsqrt rounding would break exactness
    config.eps = 0.0;
    config.nsub = 1 + rng.uniform_index(n);
    HaanNormProvider provider(config);

    const auto z = random_vector(rng, n);
    const float c = static_cast<float>(rng.uniform(0.5, 8.0));
    std::vector<float> scaled(n);
    for (std::size_t k = 0; k < n; ++k) scaled[k] = c * z[k];

    std::vector<float> out1(n), out2(n);
    provider.begin_sequence();
    provider.normalize(0, 0, model::NormKind::kRMSNorm, z, {}, {}, out1);
    provider.normalize(0, 1, model::NormKind::kRMSNorm, scaled, {}, {}, out2);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(out1[k], out2[k], 2e-3f * (1.0f + std::abs(out1[k])));
    }
  }
}

TEST_P(HaanNormPropertySweep, LayerNormShiftInvariance) {
  // LayerNorm(z + c) == LayerNorm(z): re-centering removes any constant
  // shift, including through the subsampled mean estimate (the shift moves
  // the prefix mean by exactly c).
  common::Rng rng(GetParam() + 1);
  for (int i = 0; i < 100; ++i) {
    const std::size_t n = 64 + rng.uniform_index(256);
    HaanConfig config;
    config.use_fast_invsqrt = false;
    config.nsub = n;  // full-vector stats: shift cancels exactly
    HaanNormProvider provider(config);

    const auto z = random_vector(rng, n);
    const float c = static_cast<float>(rng.uniform(-5.0, 5.0));
    std::vector<float> shifted(n);
    for (std::size_t k = 0; k < n; ++k) shifted[k] = z[k] + c;

    std::vector<float> out1(n), out2(n);
    provider.begin_sequence();
    provider.normalize(0, 0, model::NormKind::kLayerNorm, z, {}, {}, out1);
    provider.normalize(0, 1, model::NormKind::kLayerNorm, shifted, {}, {}, out2);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(out1[k], out2[k], 5e-4f * (1.0f + std::abs(out1[k])));
    }
  }
}

TEST_P(HaanNormPropertySweep, OutputAlwaysFinite) {
  // Whatever the configuration — including absurd skip plans — the provider
  // never emits inf/NaN (the hardware datapath saturates).
  common::Rng rng(GetParam() + 2);
  for (int i = 0; i < 100; ++i) {
    const std::size_t n = 32 + rng.uniform_index(128);
    HaanConfig config;
    config.nsub = rng.uniform_index(2) ? 0 : 1 + rng.uniform_index(n);
    config.format = rng.uniform_index(2) ? numerics::NumericFormat::kINT8
                                         : numerics::NumericFormat::kFP16;
    SkipPlan plan;
    plan.start = 0;
    plan.end = 3;
    plan.decay = rng.uniform(-5.0, 5.0);  // wildly wrong slopes included
    plan.enabled = true;
    config.plan = plan;
    HaanNormProvider provider(config);

    const auto z = random_vector(rng, n);
    std::vector<float> out(n);
    provider.begin_sequence();
    for (std::size_t layer = 0; layer <= 3; ++layer) {
      provider.normalize(layer, 0, model::NormKind::kRMSNorm, z, {}, {}, out);
      for (const float v : out) ASSERT_TRUE(std::isfinite(v));
    }
  }
}

TEST_P(HaanNormPropertySweep, CountersAddUp) {
  common::Rng rng(GetParam() + 3);
  SkipPlan plan;
  plan.start = 1;
  plan.end = 3;
  plan.decay = -0.1;
  plan.enabled = true;
  HaanConfig config;
  config.plan = plan;
  HaanNormProvider provider(config);

  const std::size_t layers = 6;
  const std::size_t positions = 4;
  provider.begin_sequence();
  const auto z = random_vector(rng, 64);
  std::vector<float> out(64);
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (std::size_t pos = 0; pos < positions; ++pos) {
      provider.normalize(layer, pos, model::NormKind::kRMSNorm, z, {}, {}, out);
    }
  }
  const auto& counters = provider.counters();
  EXPECT_EQ(counters.norm_calls, layers * positions);
  EXPECT_EQ(counters.isd_predicted, plan.skipped_count() * positions);
  EXPECT_EQ(counters.isd_computed + counters.isd_predicted, counters.norm_calls);
}

TEST_P(HaanNormPropertySweep, FullConfigStaysCloseToReference) {
  // Full-vector statistics + FP32 + exact invsqrt reproduces the reference
  // within float rounding for any input.
  common::Rng rng(GetParam() + 4);
  for (int i = 0; i < 100; ++i) {
    const std::size_t n = 8 + rng.uniform_index(512);
    HaanConfig config;
    config.use_fast_invsqrt = false;
    HaanNormProvider provider(config);
    const auto z = random_vector(rng, n);
    std::vector<float> alpha(n), beta(n);
    rng.fill_gaussian(alpha, 1.0, 0.2);
    rng.fill_gaussian(beta, 0.0, 0.1);
    std::vector<float> out(n), ref(n);
    provider.begin_sequence();
    provider.normalize(0, 0, model::NormKind::kLayerNorm, z, alpha, beta, out);
    tensor::layernorm(z, alpha, beta, ref, config.eps);
    EXPECT_LT(tensor::max_abs_error(out, ref), 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HaanNormPropertySweep,
                         ::testing::Values(1001u, 2002u, 3003u));

}  // namespace
}  // namespace haan::core
