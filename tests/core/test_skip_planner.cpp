#include "core/skip_planner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace haan::core {
namespace {

/// Builds a trace with a known shape: steep early decay, noisy flat middle,
/// clean linear tail with slope `tail_slope` starting at `tail_start`.
IsdTrace synthetic_trace(std::size_t n_layers, std::size_t tail_start,
                         double tail_slope, double noise, std::uint64_t seed,
                         std::size_t observations = 4) {
  IsdTrace trace(n_layers);
  common::Rng rng(seed);
  for (std::size_t obs = 0; obs < observations; ++obs) {
    trace.begin_observation();
    const double offset = rng.gaussian(0.0, 0.05);
    for (std::size_t l = 0; l < n_layers; ++l) {
      double value;
      if (l < tail_start) {
        // Early: exponential-ish decay toward -1 plus noticeable noise.
        value = -1.0 * (1.0 - std::exp(-static_cast<double>(l) / 3.0)) +
                rng.gaussian(0.0, noise * 4.0);
      } else {
        value = -1.0 + tail_slope * static_cast<double>(l - tail_start) +
                rng.gaussian(0.0, noise);
      }
      trace.record(l, value + offset);
    }
  }
  return trace;
}

TEST(CalDecay, ExactSlope) {
  const std::vector<double> window{0.0, -0.5, -1.0, -1.5};
  EXPECT_NEAR(cal_decay(window), -0.5, 1e-12);
}

TEST(SkipPlanner, FindsTheLinearTail) {
  const IsdTrace trace = synthetic_trace(40, 20, -0.05, 1e-4, 1);
  SkipPlannerOptions options;
  options.min_gap = 8;
  const SkipPlan plan = plan_skip(trace, options);
  EXPECT_TRUE(plan.enabled);
  // The chosen window must sit inside the clean linear region.
  EXPECT_GE(plan.start, 19u);
  EXPECT_LE(plan.end, 39u);
  EXPECT_NEAR(plan.decay, -0.05, 0.01);
  EXPECT_LT(plan.pearson, -0.999);
}

TEST(SkipPlanner, RespectsMinGap) {
  const IsdTrace trace = synthetic_trace(40, 20, -0.05, 1e-3, 2);
  SkipPlannerOptions options;
  options.min_gap = 12;
  const SkipPlan plan = plan_skip(trace, options);
  EXPECT_GE(plan.end - plan.start, 12u);
}

TEST(SkipPlanner, RespectsMaxGap) {
  const IsdTrace trace = synthetic_trace(40, 10, -0.05, 1e-4, 3);
  SkipPlannerOptions options;
  options.min_gap = 4;
  options.max_gap = 8;
  const SkipPlan plan = plan_skip(trace, options);
  EXPECT_LE(plan.end - plan.start, 8u);
}

TEST(SkipPlanner, MostNegativePearsonWinsOverFlatWindow) {
  // A perfectly flat window has Pearson 0; the declining window must win
  // even if the flat one is "cleaner".
  IsdTrace trace(20);
  trace.begin_observation();
  for (std::size_t l = 0; l < 10; ++l) trace.record(l, -1.0);  // flat
  for (std::size_t l = 10; l < 20; ++l) {
    trace.record(l, -1.0 - 0.1 * static_cast<double>(l - 10));  // declining
  }
  SkipPlannerOptions options;
  options.min_gap = 5;
  const SkipPlan plan = plan_skip(trace, options);
  EXPECT_GE(plan.start, 8u);
  EXPECT_LT(plan.decay, -0.05);
}

TEST(SkipPlan, SkipsSemantics) {
  SkipPlan plan;
  plan.start = 10;
  plan.end = 20;
  plan.enabled = true;
  EXPECT_FALSE(plan.skips(10));  // anchor is computed
  EXPECT_TRUE(plan.skips(11));
  EXPECT_TRUE(plan.skips(20));
  EXPECT_FALSE(plan.skips(21));
  EXPECT_FALSE(plan.skips(9));
  EXPECT_EQ(plan.skipped_count(), 10u);
}

TEST(SkipPlan, DisabledSkipsNothing) {
  SkipPlan plan;
  plan.start = 0;
  plan.end = 100;
  plan.enabled = false;
  EXPECT_FALSE(plan.skips(5));
  EXPECT_EQ(plan.skipped_count(), 0u);
}

TEST(FixedRangePlan, FitsDecayOnGivenWindow) {
  const IsdTrace trace = synthetic_trace(40, 0, -0.08, 1e-5, 4);
  const SkipPlan plan = fixed_range_plan(trace, 10, 30);
  EXPECT_EQ(plan.start, 10u);
  EXPECT_EQ(plan.end, 30u);
  EXPECT_TRUE(plan.enabled);
  EXPECT_NEAR(plan.decay, -0.08, 0.005);
}

TEST(SkipPlanner, AlgorithmOneMinCorInitialization) {
  // Even a *positively* sloped trace returns a plan (minCor starts at 1, so
  // any correlation below 1 wins), matching Algorithm 1's semantics.
  IsdTrace trace(16);
  trace.begin_observation();
  for (std::size_t l = 0; l < 16; ++l) trace.record(l, 0.1 * static_cast<double>(l));
  SkipPlannerOptions options;
  options.min_gap = 4;
  const SkipPlan plan = plan_skip(trace, options);
  EXPECT_TRUE(plan.enabled);
  EXPECT_GT(plan.decay, 0.0);  // faithfully reports the positive slope
}

class PlannerNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(PlannerNoiseSweep, TailStillFoundUnderNoise) {
  const IsdTrace trace = synthetic_trace(60, 30, -0.04, GetParam(), 7, 8);
  SkipPlannerOptions options;
  options.min_gap = 10;
  const SkipPlan plan = plan_skip(trace, options);
  // Slope estimate within 50% of truth even at the highest noise level.
  EXPECT_NEAR(plan.decay, -0.04, 0.02);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, PlannerNoiseSweep,
                         ::testing::Values(1e-5, 1e-4, 1e-3, 5e-3));

}  // namespace
}  // namespace haan::core
