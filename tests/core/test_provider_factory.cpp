#include "core/provider_factory.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace haan::core {
namespace {

ProviderOptions options_for(std::size_t width, const std::string& model_name = "") {
  ProviderOptions options;
  options.width = width;
  options.model_name = model_name;
  return options;
}

TEST(ProviderFactory, AllRegisteredNamesConstruct) {
  for (const auto& name : norm_provider_names()) {
    EXPECT_TRUE(is_norm_provider_name(name));
    const auto provider = make_norm_provider(name, options_for(64));
    EXPECT_NE(provider, nullptr) << name;
  }
}

TEST(ProviderFactory, UnknownNameReturnsNull) {
  EXPECT_FALSE(is_norm_provider_name("sole"));
  EXPECT_EQ(make_norm_provider("sole", options_for(64)), nullptr);
  EXPECT_EQ(make_norm_provider("", options_for(64)), nullptr);
}

TEST(ProviderFactory, HelpListsEveryName) {
  const std::string help = norm_provider_help();
  for (const auto& name : norm_provider_names()) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
}

TEST(ProviderFactory, ExactIsNotAHaanProvider) {
  const auto exact = make_norm_provider("exact", options_for(64));
  EXPECT_EQ(as_haan_provider(exact.get()), nullptr);
  const auto haan = make_norm_provider("haan", options_for(64));
  EXPECT_NE(as_haan_provider(haan.get()), nullptr);
}

TEST(ProviderFactory, HaanResolvesModelPaperConfig) {
  // llama -> INT8 (paper §V-A), gpt2/opt -> FP16.
  const auto llama = resolve_haan_config("haan", options_for(128, "llama7b"));
  EXPECT_EQ(llama.format, numerics::NumericFormat::kINT8);
  EXPECT_EQ(llama.nsub, llama7b_algorithm_config(128).nsub);

  const auto opt = resolve_haan_config("haan", options_for(128, "opt2.7b"));
  EXPECT_EQ(opt.format, numerics::NumericFormat::kFP16);

  const auto gpt2 = resolve_haan_config("haan", options_for(96, "gpt2-1.5b"));
  EXPECT_EQ(gpt2.format, numerics::NumericFormat::kFP16);
  EXPECT_EQ(gpt2.nsub, gpt2_1p5b_algorithm_config(96).nsub);
}

TEST(ProviderFactory, VariantsPinTheirConfig) {
  const auto int8 = resolve_haan_config("haan-int8", options_for(128, "gpt2"));
  EXPECT_EQ(int8.format, numerics::NumericFormat::kINT8);

  const auto fp16 = resolve_haan_config("haan-fp16", options_for(128, "llama7b"));
  EXPECT_EQ(fp16.format, numerics::NumericFormat::kFP16);

  const auto full = resolve_haan_config("haan-full", options_for(128));
  EXPECT_EQ(full.nsub, 0u);
  EXPECT_EQ(full.format, numerics::NumericFormat::kFP32);
}

TEST(ProviderFactory, PlanAttachmentAndNoskip) {
  ProviderOptions options = options_for(64);
  options.plan.enabled = true;
  options.plan.start = 3;
  options.plan.end = 7;
  options.plan.decay = -0.1;

  const auto with_plan = resolve_haan_config("haan", options);
  EXPECT_TRUE(with_plan.plan.enabled);
  EXPECT_EQ(with_plan.plan.start, 3u);

  const auto noskip = resolve_haan_config("haan-noskip", options);
  EXPECT_FALSE(noskip.plan.enabled);
}

TEST(ProviderFactory, EpsPropagates) {
  ProviderOptions options = options_for(64);
  options.eps = 1e-3;
  EXPECT_DOUBLE_EQ(resolve_haan_config("haan", options).eps, 1e-3);
}

TEST(ProviderFactory, FactoryProvidersNormalize) {
  common::Rng rng(9);
  std::vector<float> z(64);
  for (auto& v : z) v = static_cast<float>(rng.gaussian(0.1, 1.4));
  for (const auto& name : norm_provider_names()) {
    const auto provider = make_norm_provider(name, options_for(64));
    provider->begin_sequence();
    std::vector<float> out(64);
    provider->normalize(0, 0, model::NormKind::kLayerNorm, z, {}, {}, out);
    double sum = 0.0;
    for (const float v : out) sum += v;
    // Normalized output is near zero-mean for every backend.
    EXPECT_NEAR(sum / 64.0, 0.0, 0.25) << name;
  }
}

}  // namespace
}  // namespace haan::core
