#include "core/haan_norm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "tensor/norm_ref.hpp"
#include "tensor/ops.hpp"

namespace haan::core {
namespace {

std::vector<float> random_vector(std::size_t n, std::uint64_t seed, double mean = 0.5,
                                 double stddev = 2.0) {
  common::Rng rng(seed);
  std::vector<float> z(n);
  rng.fill_gaussian(z, mean, stddev);
  return z;
}

TEST(HaanNorm, AllOffMatchesReferenceLayerNorm) {
  HaanConfig config;
  config.use_fast_invsqrt = false;
  HaanNormProvider provider(config);
  const auto z = random_vector(128, 1);
  std::vector<float> out(z.size()), ref(z.size());
  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kLayerNorm, z, {}, {}, out);
  tensor::layernorm(z, {}, {}, ref, config.eps);
  EXPECT_LT(tensor::max_abs_error(out, ref), 1e-5);
}

TEST(HaanNorm, AllOffMatchesReferenceRmsNorm) {
  HaanConfig config;
  config.use_fast_invsqrt = false;
  HaanNormProvider provider(config);
  const auto z = random_vector(64, 2);
  std::vector<float> out(z.size()), ref(z.size());
  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kRMSNorm, z, {}, {}, out);
  tensor::rmsnorm(z, {}, {}, ref, config.eps);
  EXPECT_LT(tensor::max_abs_error(out, ref), 1e-5);
}

TEST(HaanNorm, FastInvSqrtWithinQuarterPercent) {
  HaanConfig config;  // fast invsqrt on, 1 Newton iteration
  HaanNormProvider provider(config);
  const auto z = random_vector(256, 3);
  std::vector<float> out(z.size()), ref(z.size());
  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kLayerNorm, z, {}, {}, out);
  tensor::layernorm(z, {}, {}, ref, config.eps);
  for (std::size_t i = 0; i < z.size(); ++i) {
    if (std::abs(ref[i]) < 0.05f) continue;
    EXPECT_NEAR(out[i] / ref[i], 1.0, 0.0025);
  }
}

TEST(HaanNorm, AffineParamsApplied) {
  HaanConfig config;
  config.use_fast_invsqrt = false;
  HaanNormProvider provider(config);
  const auto z = random_vector(32, 4);
  std::vector<float> alpha(32, 2.0f), beta(32, 1.0f);
  std::vector<float> out(32), ref(32);
  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kLayerNorm, z, alpha, beta, out);
  tensor::layernorm(z, alpha, beta, ref, config.eps);
  EXPECT_LT(tensor::max_abs_error(out, ref), 1e-5);
}

TEST(HaanNorm, SkippedLayerUsesPredictedIsd) {
  SkipPlan plan;
  plan.start = 0;
  plan.end = 2;
  plan.decay = -0.5;
  plan.enabled = true;
  HaanConfig config;
  config.use_fast_invsqrt = false;
  config.plan = plan;
  HaanNormProvider provider(config);

  const auto z = random_vector(64, 5);
  std::vector<float> out(z.size());
  provider.begin_sequence();
  // Layer 0 (anchor): computed.
  provider.normalize(0, 0, model::NormKind::kRMSNorm, z, {}, {}, out);
  const double anchor_isd = provider.last_isd_used();
  // Layer 1: predicted = anchor * exp(decay).
  provider.normalize(1, 0, model::NormKind::kRMSNorm, z, {}, {}, out);
  EXPECT_NEAR(provider.last_isd_used(), anchor_isd * std::exp(-0.5), 1e-9);
  // Layer 2: predicted = anchor * exp(2 * decay).
  provider.normalize(2, 0, model::NormKind::kRMSNorm, z, {}, {}, out);
  EXPECT_NEAR(provider.last_isd_used(), anchor_isd * std::exp(-1.0), 1e-9);
  EXPECT_EQ(provider.counters().isd_computed, 1u);
  EXPECT_EQ(provider.counters().isd_predicted, 2u);
}

TEST(HaanNorm, SkippedLayerNormStillRecentersWithSubsampledMean) {
  SkipPlan plan;
  plan.start = 0;
  plan.end = 1;
  plan.decay = 0.0;
  plan.enabled = true;
  HaanConfig config;
  config.use_fast_invsqrt = false;
  config.plan = plan;
  config.nsub = 32;
  HaanNormProvider provider(config);

  const auto z = random_vector(64, 6, /*mean=*/10.0, /*stddev=*/1.0);
  std::vector<float> out(z.size());
  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kLayerNorm, z, {}, {}, out);
  provider.normalize(1, 0, model::NormKind::kLayerNorm, z, {}, {}, out);
  // The skipped layer's output must still be roughly centered: mean removed.
  const auto stats = tensor::exact_stats(out);
  EXPECT_LT(std::abs(stats.mean), 0.2);
}

TEST(HaanNorm, CountersTrackElementsRead) {
  HaanConfig config;
  config.nsub = 16;
  HaanNormProvider provider(config);
  const auto z = random_vector(64, 7);
  std::vector<float> out(z.size());
  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kRMSNorm, z, {}, {}, out);
  EXPECT_EQ(provider.counters().elements_read, 16u);
  EXPECT_EQ(provider.counters().norm_calls, 1u);
}

TEST(HaanNorm, SubsamplingChangesOnlyStatistics) {
  HaanConfig full;
  full.use_fast_invsqrt = false;
  HaanConfig sub;
  sub.use_fast_invsqrt = false;
  sub.nsub = 64;
  HaanNormProvider p_full(full), p_sub(sub);
  const auto z = random_vector(128, 8);
  std::vector<float> out_full(z.size()), out_sub(z.size());
  p_full.begin_sequence();
  p_sub.begin_sequence();
  p_full.normalize(0, 0, model::NormKind::kRMSNorm, z, {}, {}, out_full);
  p_sub.normalize(0, 0, model::NormKind::kRMSNorm, z, {}, {}, out_sub);
  // Outputs are proportional: same direction, different ISD scale.
  const double ratio = out_sub[0] / out_full[0];
  for (std::size_t i = 1; i < z.size(); ++i) {
    if (std::abs(out_full[i]) < 1e-3) continue;
    EXPECT_NEAR(out_sub[i] / out_full[i], ratio, 1e-4);
  }
  EXPECT_NEAR(ratio, 1.0, 0.3);  // subsampled estimate in the right ballpark
}

TEST(HaanNorm, Int8QuantizationBoundedError) {
  HaanConfig config;
  config.use_fast_invsqrt = false;
  config.format = numerics::NumericFormat::kINT8;
  HaanNormProvider provider(config);
  const auto z = random_vector(256, 9);
  std::vector<float> out(z.size()), ref(z.size());
  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kLayerNorm, z, {}, {}, out);
  tensor::layernorm(z, {}, {}, ref, config.eps);
  // INT8 grid on ~N(0.5, 2): worst element error ~ scale = max|z|/127.
  EXPECT_LT(tensor::rms_error(out, ref), 0.05);
}

TEST(HaanNorm, DenormalScaleSecondMomentGivesFiniteClampedIsd) {
  // Regression: compute_isd casts second_moment + eps to float before the
  // fast_inv_sqrt bit hack. A denormal-scale activation vector with eps = 0
  // produced a denormal (or zero) float, violating the bit hack's x > 0,
  // finite, *normal* precondition and yielding garbage ISD. The operand is
  // now clamped to the smallest normal float.
  HaanConfig config;
  config.eps = 0.0;  // fast invsqrt on (default), nothing masking the cast
  HaanNormProvider provider(config);

  // second_moment ~ 4e-40: denormal as float.
  const std::vector<float> denormal_scale(64, 2e-20f);
  std::vector<float> out(denormal_scale.size());
  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kRMSNorm, denormal_scale, {}, {}, out);
  const double isd = provider.last_isd_used();
  EXPECT_TRUE(std::isfinite(isd));
  EXPECT_GT(isd, 0.0);
  // The clamp floors the operand at FLT_MIN; one Newton step keeps the
  // inverter within a fraction of a percent of 1/sqrt(FLT_MIN).
  const double expected = 1.0 / std::sqrt(std::numeric_limits<float>::min());
  EXPECT_NEAR(isd / expected, 1.0, 0.004);
  for (const float v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST(HaanNorm, ZeroAndConstantVectorsStayFinite) {
  HaanConfig config;
  config.eps = 0.0;
  HaanNormProvider provider(config);
  std::vector<float> out(32);

  const std::vector<float> zeros(32, 0.0f);  // second_moment exactly 0
  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kRMSNorm, zeros, {}, {}, out);
  EXPECT_TRUE(std::isfinite(provider.last_isd_used()));
  for (const float v : out) EXPECT_TRUE(std::isfinite(v));

  // Tiny constant vector: float(second_moment) rounds to 0 without the clamp.
  const std::vector<float> tiny(32, 1e-30f);
  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kLayerNorm, tiny, {}, {}, out);
  EXPECT_TRUE(std::isfinite(provider.last_isd_used()));
  for (const float v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST(HaanNorm, FusedResidualNormalizeMatchesAddThenNormalize) {
  // The fused entry point must be bit-identical to the unfused sequence and
  // leave h updated with the sum (it stays the residual stream).
  for (const auto kind : {model::NormKind::kLayerNorm, model::NormKind::kRMSNorm}) {
    HaanConfig config;
    config.nsub = 48;
    config.format = numerics::NumericFormat::kFP16;
    HaanNormProvider fused_provider(config), plain_provider(config);

    auto h_fused = random_vector(96, 21);
    auto h_plain = h_fused;
    const auto residual = random_vector(96, 22, 0.0, 1.0);
    const auto alpha = random_vector(96, 23, 1.0, 0.1);
    std::vector<float> out_fused(96), out_plain(96);

    fused_provider.begin_sequence();
    fused_provider.residual_add_normalize(0, 0, kind, h_fused, residual, alpha,
                                          {}, out_fused);
    plain_provider.begin_sequence();
    for (std::size_t i = 0; i < h_plain.size(); ++i) h_plain[i] += residual[i];
    plain_provider.normalize(0, 0, kind, h_plain, alpha, {}, out_plain);

    for (std::size_t i = 0; i < out_fused.size(); ++i) {
      EXPECT_EQ(out_fused[i], out_plain[i]);
      EXPECT_EQ(h_fused[i], h_plain[i]);
    }
    EXPECT_EQ(fused_provider.counters().fused_residual_norms, 1u);
    EXPECT_EQ(plain_provider.counters().fused_residual_norms, 0u);
    EXPECT_EQ(fused_provider.counters().norm_calls, 1u);
  }
}

TEST(HaanNorm, BeginSequenceResetsAnchors) {
  SkipPlan plan;
  plan.start = 0;
  plan.end = 1;
  plan.decay = 0.0;
  plan.enabled = true;
  HaanConfig config;
  config.plan = plan;
  HaanNormProvider provider(config);
  const auto z1 = random_vector(32, 10, 0.0, 1.0);
  const auto z2 = random_vector(32, 11, 0.0, 10.0);  // very different scale
  std::vector<float> out(32);

  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kRMSNorm, z1, {}, {}, out);
  const double anchor1 = provider.last_isd_used();

  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kRMSNorm, z2, {}, {}, out);
  const double anchor2 = provider.last_isd_used();
  provider.normalize(1, 0, model::NormKind::kRMSNorm, z2, {}, {}, out);
  // The prediction must be based on z2's anchor (decay 0 => equal), not z1's.
  EXPECT_NEAR(provider.last_isd_used(), anchor2, 1e-12);
  EXPECT_LT(provider.last_isd_used(), anchor1 * 0.5);
}

class HaanNormFormatSweep : public ::testing::TestWithParam<numerics::NumericFormat> {};

TEST_P(HaanNormFormatSweep, OutputsFiniteAndDirectionallyCorrect) {
  HaanConfig config;
  config.format = GetParam();
  HaanNormProvider provider(config);
  const auto z = random_vector(128, 12);
  std::vector<float> out(z.size()), ref(z.size());
  provider.begin_sequence();
  provider.normalize(0, 0, model::NormKind::kLayerNorm, z, {}, {}, out);
  tensor::layernorm(z, {}, {}, ref, config.eps);
  for (const float v : out) ASSERT_TRUE(std::isfinite(v));
  // Cosine similarity with the reference stays very high for all formats.
  const double cosine = tensor::dot(out, ref) /
                        (tensor::l2_norm(out) * tensor::l2_norm(ref));
  EXPECT_GT(cosine, 0.999);
}

INSTANTIATE_TEST_SUITE_P(Formats, HaanNormFormatSweep,
                         ::testing::Values(numerics::NumericFormat::kFP32,
                                           numerics::NumericFormat::kFP16,
                                           numerics::NumericFormat::kBF16,
                                           numerics::NumericFormat::kINT8));

}  // namespace
}  // namespace haan::core
