// Row-block kernel semantics: for every backend this machine can run, the
// *_rows kernels must be bit-identical to looping that same backend's per-row
// entry points (the row-block path adds batching, never new rounding), the
// scalar rows kernels must therefore be bit-identical to the seed per-row
// reference, and the fused row-block span entry points must equal a per-row
// fused loop exactly. Shapes include odd row counts, prime d, and subsampled
// statistics prefixes (nstats < d).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "kernels/kernels.hpp"
#include "numerics/formats.hpp"

namespace haan::kernels {
namespace {

struct BlockCase {
  std::size_t rows;
  std::size_t d;
};

// Odd row counts and prime d exercise every tail path of every backend.
const BlockCase kBlocks[] = {{1, 1}, {3, 7}, {7, 97}, {5, 256}, {9, 331}, {64, 64}};

std::vector<float> random_block(std::size_t n, std::uint64_t seed,
                                double mean = 0.1, double stddev = 1.8) {
  common::Rng rng(seed);
  std::vector<float> v(n);
  rng.fill_gaussian(v, mean, stddev);
  return v;
}

/// Statistics prefix lengths to test for a row width d (full + subsampled).
std::vector<std::size_t> stat_lengths(std::size_t d) {
  std::vector<std::size_t> ns{d};
  if (d > 1) ns.push_back(d / 2 + 1);
  if (d > 4) ns.push_back(3);
  return ns;
}

TEST(RowBlockKernels, StatsRowsMatchesPerRowLoop) {
  for (const KernelTable* table : supported_kernels()) {
    for (const auto& block : kBlocks) {
      const auto x = random_block(block.rows * block.d, block.d);
      for (const std::size_t n : stat_lengths(block.d)) {
        std::vector<SumStats> got(block.rows);
        table->stats_rows(x.data(), block.rows, block.d, n, got.data());
        for (std::size_t r = 0; r < block.rows; ++r) {
          const SumStats expected = table->stats(x.data() + r * block.d, n);
          EXPECT_EQ(got[r].sum, expected.sum)
              << table->name << " rows=" << block.rows << " d=" << block.d
              << " n=" << n << " r=" << r;
          EXPECT_EQ(got[r].sum_sq, expected.sum_sq);
        }
      }
    }
  }
}

TEST(RowBlockKernels, CenteredSumSqRowsMatchesPerRowLoop) {
  for (const KernelTable* table : supported_kernels()) {
    for (const auto& block : kBlocks) {
      const auto x = random_block(block.rows * block.d, block.d + 1);
      std::vector<double> mean(block.rows);
      for (std::size_t r = 0; r < block.rows; ++r) {
        mean[r] = table->stats(x.data() + r * block.d, block.d).sum /
                  static_cast<double>(block.d);
      }
      std::vector<double> got(block.rows);
      table->centered_sum_sq_rows(x.data(), block.rows, block.d, block.d,
                                  mean.data(), got.data());
      for (std::size_t r = 0; r < block.rows; ++r) {
        EXPECT_EQ(got[r], table->centered_sum_sq(x.data() + r * block.d,
                                                 block.d, mean[r]))
            << table->name << " rows=" << block.rows << " d=" << block.d;
      }
    }
  }
}

TEST(RowBlockKernels, ResidualAddStatsRowsMatchesAddThenPrefixStats) {
  for (const KernelTable* table : supported_kernels()) {
    for (const auto& block : kBlocks) {
      for (const std::size_t n : stat_lengths(block.d)) {
        const auto base = random_block(block.rows * block.d, block.d + 2);
        const auto residual =
            random_block(block.rows * block.d, block.d + 3, 0.0, 0.5);

        // Reference: the seed sequence — full-block add, then per-row prefix
        // statistics over the summed values.
        auto h_ref = base;
        table->residual_add(h_ref.data(), residual.data(), h_ref.size());
        std::vector<SumStats> expected(block.rows);
        for (std::size_t r = 0; r < block.rows; ++r) {
          expected[r] = table->stats(h_ref.data() + r * block.d, n);
        }

        auto h_got = base;
        std::vector<SumStats> got(block.rows);
        table->residual_add_stats_rows(h_got.data(), residual.data(),
                                       block.rows, block.d, n, got.data());
        for (std::size_t i = 0; i < h_got.size(); ++i) {
          ASSERT_EQ(h_got[i], h_ref[i])
              << table->name << " d=" << block.d << " n=" << n << " i=" << i;
        }
        for (std::size_t r = 0; r < block.rows; ++r) {
          EXPECT_EQ(got[r].sum, expected[r].sum)
              << table->name << " d=" << block.d << " n=" << n << " r=" << r;
          EXPECT_EQ(got[r].sum_sq, expected[r].sum_sq);
        }
      }
    }
  }
}

TEST(RowBlockKernels, NormalizeAffineRowsMatchesPerRowLoopAndClamp) {
  constexpr float kSaturation = 65504.0f;
  for (const KernelTable* table : supported_kernels()) {
    for (const auto& block : kBlocks) {
      auto x = random_block(block.rows * block.d, block.d + 4);
      // Extreme isd values push some rows into the saturation range; a NaN
      // input exercises the NaN -> 0 lane.
      if (x.size() >= 4) x[2] = std::numeric_limits<float>::quiet_NaN();
      common::Rng rng(block.d + 5);
      std::vector<float> alpha(block.d), beta(block.d);
      rng.fill_gaussian(alpha, 1.0, 0.2);
      rng.fill_gaussian(beta, 0.0, 0.3);
      std::vector<double> mean(block.rows), isd(block.rows);
      for (std::size_t r = 0; r < block.rows; ++r) {
        mean[r] = 0.01 * static_cast<double>(r);
        isd[r] = (r % 3 == 0) ? 1e6 : 0.8;  // 1e6 saturates large inputs
      }
      for (const bool saturate : {false, true}) {
        std::vector<float> expected(x.size()), got(x.size());
        for (std::size_t r = 0; r < block.rows; ++r) {
          float* out_r = expected.data() + r * block.d;
          table->normalize_affine(x.data() + r * block.d, block.d, mean[r],
                                  isd[r], alpha.data(), beta.data(), out_r);
          if (saturate) {
            for (std::size_t i = 0; i < block.d; ++i) {
              const float v = out_r[i];
              out_r[i] = std::isnan(v)
                             ? 0.0f
                             : std::clamp(v, -kSaturation, kSaturation);
            }
          }
        }
        table->normalize_affine_rows(x.data(), block.rows, block.d, mean.data(),
                                     isd.data(), alpha.data(), beta.data(),
                                     got.data(), saturate);
        for (std::size_t i = 0; i < x.size(); ++i) {
          if (std::isnan(expected[i]) || std::isnan(got[i])) {
            ASSERT_TRUE(std::isnan(expected[i]) && std::isnan(got[i]));
            continue;
          }
          ASSERT_EQ(got[i], expected[i])
              << table->name << " d=" << block.d << " saturate=" << saturate
              << " i=" << i;
        }
      }
    }
  }
}

TEST(RowBlockKernels, QuantizeDequantizeRowsMatchesPerRowLoop) {
  for (const KernelTable* table : supported_kernels()) {
    for (const auto& block : kBlocks) {
      for (const auto format :
           {numerics::NumericFormat::kINT8, numerics::NumericFormat::kFP16,
            numerics::NumericFormat::kBF16}) {
        const auto base = random_block(block.rows * block.d, block.d + 6);
        std::vector<float> scales(block.rows);
        for (std::size_t r = 0; r < block.rows; ++r) {
          scales[r] = numerics::choose_int8_scale(
              std::span(base.data() + r * block.d, block.d));
        }
        auto expected = base;
        for (std::size_t r = 0; r < block.rows; ++r) {
          table->quantize_dequantize(expected.data() + r * block.d, block.d,
                                     format, scales[r]);
        }
        auto got = base;
        table->quantize_dequantize_rows(got.data(), block.rows, block.d, format,
                                        scales.data());
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], expected[i])
              << table->name << " " << numerics::to_string(format)
              << " d=" << block.d << " i=" << i;
        }
      }
    }
  }
}

TEST(RowBlockKernels, FusedRowsEntryPointsMatchPerRowFusedLoop) {
  for (const KernelTable* table : supported_kernels()) {
    for (const auto& block : kBlocks) {
      common::Rng rng(block.d + 7);
      std::vector<float> alpha(block.d), beta(block.d);
      rng.fill_gaussian(alpha, 1.0, 0.1);
      rng.fill_gaussian(beta, 0.0, 0.2);
      const auto base = random_block(block.rows * block.d, block.d + 8);
      const auto residual =
          random_block(block.rows * block.d, block.d + 9, 0.0, 0.4);

      for (const bool layernorm : {false, true}) {
        auto h_ref = base;
        std::vector<float> out_ref(base.size());
        for (std::size_t r = 0; r < block.rows; ++r) {
          const auto h_row = std::span(h_ref).subspan(r * block.d, block.d);
          const auto res_row =
              std::span(residual).subspan(r * block.d, block.d);
          const auto out_row =
              std::span(out_ref).subspan(r * block.d, block.d);
          if (layernorm) {
            residual_add_layernorm(*table, h_row, res_row, alpha, beta, out_row,
                                   1e-5);
          } else {
            residual_add_rmsnorm(*table, h_row, res_row, alpha, beta, out_row,
                                 1e-5);
          }
        }

        auto h_got = base;
        std::vector<float> out_got(base.size());
        RowNormWorkspace ws;
        if (layernorm) {
          residual_add_layernorm_rows(*table, block.rows, h_got, residual,
                                      alpha, beta, out_got, 1e-5, ws);
        } else {
          residual_add_rmsnorm_rows(*table, block.rows, h_got, residual, alpha,
                                    beta, out_got, 1e-5, ws);
        }
        for (std::size_t i = 0; i < base.size(); ++i) {
          ASSERT_EQ(h_got[i], h_ref[i]);
          ASSERT_EQ(out_got[i], out_ref[i])
              << table->name << (layernorm ? " layernorm" : " rmsnorm")
              << " rows=" << block.rows << " d=" << block.d << " i=" << i;
        }
      }
    }
  }
}

// Every row-block variant ("avx2-pf", "avx512-nt", ...) must be BIT-IDENTICAL
// to its base family on every rows entry point: nontemporal stores and
// prefetch distance are cache hints, never value changes. Odd/prime shapes
// exercise the variants' head/body/tail splits (the -nt normalize path
// handles unaligned heads and sub-width tails with scalar code).
TEST(RowBlockKernels, VariantsBitIdenticalToBaseFamily) {
  for (const KernelTable* variant : supported_kernel_variants()) {
    const std::string name = variant->name;
    const auto dash = name.find('-');
    if (dash == std::string::npos) continue;  // base family, not a variant
    const KernelTable* base = find_kernel_table(name.substr(0, dash));
    ASSERT_NE(base, nullptr) << name;

    for (const auto& block : kBlocks) {
      const std::size_t total = block.rows * block.d;
      const auto x = random_block(total, block.d + 11);
      const auto residual = random_block(total, block.d + 12, 0.0, 0.4);
      common::Rng rng(block.d + 13);
      std::vector<float> alpha(block.d), beta(block.d);
      rng.fill_gaussian(alpha, 1.0, 0.2);
      rng.fill_gaussian(beta, 0.0, 0.3);

      // stats_rows over full rows and a subsampled prefix.
      for (const std::size_t n : stat_lengths(block.d)) {
        std::vector<SumStats> want(block.rows), got(block.rows);
        base->stats_rows(x.data(), block.rows, block.d, n, want.data());
        variant->stats_rows(x.data(), block.rows, block.d, n, got.data());
        for (std::size_t r = 0; r < block.rows; ++r) {
          ASSERT_EQ(got[r].sum, want[r].sum) << name << " n=" << n;
          ASSERT_EQ(got[r].sum_sq, want[r].sum_sq) << name << " n=" << n;
        }
      }

      // centered_sum_sq_rows.
      {
        std::vector<double> mean(block.rows);
        for (std::size_t r = 0; r < block.rows; ++r) {
          mean[r] = base->stats(x.data() + r * block.d, block.d).sum /
                    static_cast<double>(block.d);
        }
        std::vector<double> want(block.rows), got(block.rows);
        base->centered_sum_sq_rows(x.data(), block.rows, block.d, block.d,
                                   mean.data(), want.data());
        variant->centered_sum_sq_rows(x.data(), block.rows, block.d, block.d,
                                      mean.data(), got.data());
        for (std::size_t r = 0; r < block.rows; ++r) {
          ASSERT_EQ(got[r], want[r]) << name << " r=" << r;
        }
      }

      // residual_add_stats_rows: both the in-place sum and the statistics.
      {
        auto h_want = x;
        auto h_got = x;
        std::vector<SumStats> want(block.rows), got(block.rows);
        base->residual_add_stats_rows(h_want.data(), residual.data(),
                                      block.rows, block.d, block.d,
                                      want.data());
        variant->residual_add_stats_rows(h_got.data(), residual.data(),
                                         block.rows, block.d, block.d,
                                         got.data());
        for (std::size_t i = 0; i < total; ++i) {
          ASSERT_EQ(h_got[i], h_want[i]) << name << " i=" << i;
        }
        for (std::size_t r = 0; r < block.rows; ++r) {
          ASSERT_EQ(got[r].sum, want[r].sum) << name;
          ASSERT_EQ(got[r].sum_sq, want[r].sum_sq) << name;
        }
      }

      // normalize_affine_rows, both saturation modes (the -nt streaming store
      // path fuses the saturate clamp into its body loop).
      {
        std::vector<double> mean(block.rows), isd(block.rows);
        for (std::size_t r = 0; r < block.rows; ++r) {
          mean[r] = 0.01 * static_cast<double>(r);
          isd[r] = (r % 3 == 0) ? 1e6 : 0.8;
        }
        auto z = x;
        if (z.size() >= 4) z[2] = std::numeric_limits<float>::quiet_NaN();
        for (const bool saturate : {false, true}) {
          std::vector<float> want(total), got(total);
          base->normalize_affine_rows(z.data(), block.rows, block.d,
                                      mean.data(), isd.data(), alpha.data(),
                                      beta.data(), want.data(), saturate);
          variant->normalize_affine_rows(z.data(), block.rows, block.d,
                                         mean.data(), isd.data(), alpha.data(),
                                         beta.data(), got.data(), saturate);
          for (std::size_t i = 0; i < total; ++i) {
            if (std::isnan(want[i]) || std::isnan(got[i])) {
              ASSERT_TRUE(std::isnan(want[i]) && std::isnan(got[i])) << name;
              continue;
            }
            ASSERT_EQ(got[i], want[i])
                << name << " saturate=" << saturate << " d=" << block.d
                << " i=" << i;
          }
        }
      }

      // quantize_dequantize_rows (variants keep the base implementation, but
      // the contract is table-wide — lock it in).
      {
        std::vector<float> scales(block.rows, 0.05f);
        auto want = x;
        auto got = x;
        base->quantize_dequantize_rows(want.data(), block.rows, block.d,
                                       numerics::NumericFormat::kINT8,
                                       scales.data());
        variant->quantize_dequantize_rows(got.data(), block.rows, block.d,
                                          numerics::NumericFormat::kINT8,
                                          scales.data());
        for (std::size_t i = 0; i < total; ++i) {
          ASSERT_EQ(got[i], want[i]) << name << " i=" << i;
        }
      }

      // Fused rows entry points end-to-end through the variant table.
      for (const bool layernorm : {false, true}) {
        auto h_want = x;
        auto h_got = x;
        std::vector<float> out_want(total), out_got(total);
        RowNormWorkspace ws_want, ws_got;
        if (layernorm) {
          residual_add_layernorm_rows(*base, block.rows, h_want, residual,
                                      alpha, beta, out_want, 1e-5, ws_want);
          residual_add_layernorm_rows(*variant, block.rows, h_got, residual,
                                      alpha, beta, out_got, 1e-5, ws_got);
        } else {
          residual_add_rmsnorm_rows(*base, block.rows, h_want, residual, alpha,
                                    beta, out_want, 1e-5, ws_want);
          residual_add_rmsnorm_rows(*variant, block.rows, h_got, residual,
                                    alpha, beta, out_got, 1e-5, ws_got);
        }
        for (std::size_t i = 0; i < total; ++i) {
          ASSERT_EQ(h_got[i], h_want[i]) << name;
          ASSERT_EQ(out_got[i], out_want[i])
              << name << (layernorm ? " layernorm" : " rmsnorm")
              << " rows=" << block.rows << " d=" << block.d << " i=" << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace haan::kernels
