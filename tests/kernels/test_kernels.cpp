// Kernel-layer semantics: the scalar backend must reproduce the seed
// norm_ref/subsample arithmetic bit for bit, the fused entry points must
// equal their unfused seed sequences exactly (scalar dispatch), and the
// dispatcher must honor HAAN_FORCE_SCALAR.
#include "kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "numerics/formats.hpp"

namespace haan::kernels {
namespace {

std::vector<float> random_vector(std::size_t n, std::uint64_t seed,
                                 double mean = 0.0, double stddev = 2.0) {
  common::Rng rng(seed);
  std::vector<float> z(n);
  rng.fill_gaussian(z, mean, stddev);
  return z;
}

/// The seed's exact_stats pass-1 loop, verbatim.
SumStats seed_sums(const std::vector<float>& z) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const float v : z) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  return {sum, sum_sq};
}

/// The seed's normalize + affine sequence, verbatim (temp buffer included).
std::vector<float> seed_normalize_affine(const std::vector<float>& z,
                                         double mean, double isd,
                                         const std::vector<float>& alpha,
                                         const std::vector<float>& beta) {
  std::vector<float> normalized(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    normalized[i] = static_cast<float>((z[i] - mean) * isd);
  }
  std::vector<float> out(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    float v = normalized[i];
    if (!alpha.empty()) v *= alpha[i];
    if (!beta.empty()) v += beta[i];
    out[i] = v;
  }
  return out;
}

TEST(ScalarKernels, StatsBitIdenticalToSeedLoop) {
  for (const std::size_t n : {1u, 7u, 64u, 1001u}) {
    const auto z = random_vector(n, n);
    const SumStats expected = seed_sums(z);
    const SumStats got = scalar_kernels().stats(z.data(), z.size());
    EXPECT_EQ(got.sum, expected.sum);
    EXPECT_EQ(got.sum_sq, expected.sum_sq);
  }
}

TEST(ScalarKernels, CenteredSumSqBitIdenticalToSeedLoop) {
  const auto z = random_vector(513, 2, 1.5, 3.0);
  const double mean = seed_sums(z).sum / static_cast<double>(z.size());
  double expected = 0.0;
  for (const float v : z) {
    const double d = v - mean;
    expected += d * d;
  }
  EXPECT_EQ(scalar_kernels().centered_sum_sq(z.data(), z.size(), mean), expected);
}

TEST(ScalarKernels, NormalizeAffineBitIdenticalToSeedSequence) {
  const auto z = random_vector(257, 3, -1.0, 2.0);
  const auto alpha = random_vector(257, 4, 1.0, 0.2);
  const auto beta = random_vector(257, 5, 0.0, 0.5);
  const double mean = 0.37;
  const double isd = 1.71;
  for (const bool with_alpha : {false, true}) {
    for (const bool with_beta : {false, true}) {
      const std::vector<float> a = with_alpha ? alpha : std::vector<float>{};
      const std::vector<float> b = with_beta ? beta : std::vector<float>{};
      const auto expected = seed_normalize_affine(z, mean, isd, a, b);
      std::vector<float> out(z.size());
      scalar_kernels().normalize_affine(z.data(), z.size(), mean, isd,
                                        a.empty() ? nullptr : a.data(),
                                        b.empty() ? nullptr : b.data(),
                                        out.data());
      for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], expected[i]);
    }
  }
}

TEST(ScalarKernels, ResidualAddStatsMatchesAddThenStats) {
  auto h = random_vector(123, 6);
  auto h_ref = h;
  const auto r = random_vector(123, 7);
  const SumStats got =
      scalar_kernels().residual_add_stats(h.data(), r.data(), h.size());
  for (std::size_t i = 0; i < h_ref.size(); ++i) h_ref[i] += r[i];
  const SumStats expected = seed_sums(h_ref);
  EXPECT_EQ(got.sum, expected.sum);
  EXPECT_EQ(got.sum_sq, expected.sum_sq);
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_EQ(h[i], h_ref[i]);
}

TEST(ScalarKernels, ResidualAddCopyUpdatesBothDestinations) {
  auto h = random_vector(65, 8);
  auto h_ref = h;
  const auto r = random_vector(65, 9);
  std::vector<float> dst(65, -1.0f);
  scalar_kernels().residual_add_copy(h.data(), r.data(), dst.data(), h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    h_ref[i] += r[i];
    EXPECT_EQ(h[i], h_ref[i]);
    EXPECT_EQ(dst[i], h_ref[i]);
  }
}

TEST(ScalarKernels, QuantizeMatchesNumericsElementwise) {
  auto values = random_vector(333, 10, 0.0, 5.0);
  values.push_back(0.0f);
  values.push_back(-0.0f);
  values.push_back(1e-41f);   // denormal float
  values.push_back(65504.0f);
  values.push_back(-3e38f);
  for (const auto format :
       {numerics::NumericFormat::kFP32, numerics::NumericFormat::kFP16,
        numerics::NumericFormat::kBF16, numerics::NumericFormat::kINT8}) {
    const float scale = format == numerics::NumericFormat::kINT8
                            ? numerics::choose_int8_scale(values)
                            : 1.0f;
    auto got = values;
    scalar_kernels().quantize_dequantize(got.data(), got.size(), format, scale);
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(got[i], numerics::quantize_dequantize(values[i], format, scale))
          << "format " << numerics::to_string(format) << " index " << i;
    }
  }
}

TEST(FusedKernels, ResidualAddRmsnormMatchesSeedSequence) {
  // Seed sequence: h += r; stats; rms = sqrt(sum_sq/n); isd = 1/sqrt(rms^2 +
  // eps); normalize; affine. The fused scalar path must be bit-identical.
  const double eps = 1e-5;
  auto h = random_vector(301, 11);
  auto h_ref = h;
  const auto r = random_vector(301, 12);
  const auto alpha = random_vector(301, 13, 1.0, 0.1);
  std::vector<float> out(h.size());
  residual_add_rmsnorm(scalar_kernels(), h, r, alpha, {}, out, eps);

  for (std::size_t i = 0; i < h_ref.size(); ++i) h_ref[i] += r[i];
  const SumStats sums = seed_sums(h_ref);
  const double rms = std::sqrt(sums.sum_sq / static_cast<double>(h_ref.size()));
  const double isd = 1.0 / std::sqrt(rms * rms + eps);
  const auto expected = seed_normalize_affine(h_ref, 0.0, isd, alpha, {});
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], expected[i]);
    EXPECT_EQ(h[i], h_ref[i]);
  }
}

TEST(FusedKernels, ResidualAddLayernormMatchesSeedSequence) {
  const double eps = 1e-5;
  auto h = random_vector(301, 14, 2.0, 1.5);
  auto h_ref = h;
  const auto r = random_vector(301, 15);
  const auto beta = random_vector(301, 16, 0.0, 0.3);
  std::vector<float> out(h.size());
  residual_add_layernorm(scalar_kernels(), h, r, {}, beta, out, eps);

  for (std::size_t i = 0; i < h_ref.size(); ++i) h_ref[i] += r[i];
  const double n = static_cast<double>(h_ref.size());
  const SumStats sums = seed_sums(h_ref);
  const double mean = sums.sum / n;
  double centered = 0.0;
  for (const float v : h_ref) {
    const double d = v - mean;
    centered += d * d;
  }
  const double isd = 1.0 / std::sqrt(centered / n + eps);
  const auto expected = seed_normalize_affine(h_ref, mean, isd, {}, beta);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], expected[i]);
    EXPECT_EQ(h[i], h_ref[i]);
  }
}

TEST(FusedKernels, EmptyResidualDegradesToPlainNorm) {
  auto h = random_vector(97, 17);
  const auto h_before = h;
  std::vector<float> out(h.size());
  residual_add_rmsnorm(scalar_kernels(), h, {}, {}, {}, out, 1e-5);
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_EQ(h[i], h_before[i]);
  for (const float v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST(Dispatch, ActiveTableIsSupported) {
  const char* name = active_name();
  ASSERT_NE(name, nullptr);
  bool found = false;
  for (const KernelTable* table : supported_kernels()) {
    if (std::string(table->name) == name) found = true;
  }
  EXPECT_TRUE(found) << "active kernel '" << name << "' not in supported set";
}

TEST(Dispatch, SupportedKernelsStartsWithScalar) {
  const auto tables = supported_kernels();
  ASSERT_FALSE(tables.empty());
  EXPECT_STREQ(tables.front()->name, "scalar");
}

TEST(Dispatch, ForceScalarEnvParsing) {
  // active() caches its first answer, so probe the env predicate directly.
  const char* prior = std::getenv("HAAN_FORCE_SCALAR");
  const std::string saved = prior != nullptr ? prior : "";
  const bool had_prior = prior != nullptr;

  ASSERT_EQ(setenv("HAAN_FORCE_SCALAR", "1", 1), 0);
  EXPECT_TRUE(force_scalar_requested());
  ASSERT_EQ(setenv("HAAN_FORCE_SCALAR", "0", 1), 0);
  EXPECT_FALSE(force_scalar_requested());
  ASSERT_EQ(setenv("HAAN_FORCE_SCALAR", "", 1), 0);
  EXPECT_FALSE(force_scalar_requested());
  ASSERT_EQ(unsetenv("HAAN_FORCE_SCALAR"), 0);
  EXPECT_FALSE(force_scalar_requested());

  if (had_prior) {
    ASSERT_EQ(setenv("HAAN_FORCE_SCALAR", saved.c_str(), 1), 0);
  }
}

TEST(Dispatch, ForcedScalarRunHasScalarActive) {
  // When the suite runs under HAAN_FORCE_SCALAR=1 (the CI scalar leg), the
  // cached dispatch must have landed on the scalar table.
  if (force_scalar_requested()) {
    EXPECT_STREQ(active_name(), "scalar");
  } else {
    SUCCEED();
  }
}

}  // namespace
}  // namespace haan::kernels
