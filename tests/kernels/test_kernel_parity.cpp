// Exhaustive scalar-vs-SIMD parity for every kernel, under the tolerance
// contract documented in kernels.hpp: reductions within 1e-12 * Σ|terms|
// (reassociated accumulation), elementwise kernels bit-identical or within
// 1 ulp (normalize_affine), fused norms within 4 ulp end to end. Lengths
// include primes and off-by-one-from-vector-width values to exercise every
// tail path; inputs include denormal-scale, large-magnitude and constant
// vectors.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kernels/kernels.hpp"
#include "numerics/formats.hpp"

namespace haan::kernels {
namespace {

const std::size_t kLengths[] = {1,  2,  3,  5,  7,   8,   9,    13,   16,
                                17, 31, 32, 33, 61,  64,  97,   128,  251,
                                256, 257, 1000, 1023, 1024, 4096, 4099};

/// Distance between two floats in units in the last place (sign-magnitude
/// bit patterns mapped onto a monotone integer line).
std::int64_t ulp_distance(float a, float b) {
  const auto monotone = [](float v) -> std::int64_t {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    const std::int64_t magnitude = bits & 0x7FFFFFFF;
    return (bits & 0x80000000u) ? -magnitude : magnitude;
  };
  return std::llabs(monotone(a) - monotone(b));
}

struct InputCase {
  std::string name;
  std::vector<float> values;
};

std::vector<InputCase> input_cases(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<InputCase> cases;

  InputCase gaussian{"gaussian", std::vector<float>(n)};
  rng.fill_gaussian(gaussian.values, 0.5, 2.0);
  cases.push_back(std::move(gaussian));

  InputCase large{"large-magnitude", std::vector<float>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    large.values[i] = static_cast<float>(rng.gaussian() * 1e18);
  }
  cases.push_back(std::move(large));

  InputCase denormal{"denormal-scale", std::vector<float>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    denormal.values[i] = static_cast<float>(rng.gaussian()) * 1e-38f;
  }
  cases.push_back(std::move(denormal));

  cases.push_back({"constant", std::vector<float>(n, 3.25f)});

  InputCase alternating{"alternating", std::vector<float>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    alternating.values[i] = (i % 2 == 0) ? 1e6f : -1e6f;
  }
  cases.push_back(std::move(alternating));

  return cases;
}

double sum_abs(const std::vector<float>& z) {
  double acc = 0.0;
  for (const float v : z) acc += std::abs(static_cast<double>(v));
  return acc;
}

double sum_sq_abs(const std::vector<float>& z) {
  double acc = 0.0;
  for (const float v : z) acc += static_cast<double>(v) * v;
  return acc;
}

/// All SIMD backends this machine can run (empty on scalar-only hardware).
std::vector<const KernelTable*> simd_tables() {
  auto tables = supported_kernels();
  tables.erase(tables.begin());  // scalar is always first
  return tables;
}

class KernelParity : public ::testing::Test {
 protected:
  void SetUp() override {
    if (simd_tables().empty()) {
      GTEST_SKIP() << "no SIMD backend on this CPU; scalar-only";
    }
  }
};

TEST_F(KernelParity, Stats) {
  const KernelTable& scalar = scalar_kernels();
  for (const KernelTable* simd : simd_tables()) {
    for (const std::size_t n : kLengths) {
      for (const auto& input : input_cases(n, n)) {
        const SumStats expected = scalar.stats(input.values.data(), n);
        const SumStats got = simd->stats(input.values.data(), n);
        const double sum_tol = 1e-12 * sum_abs(input.values) + 1e-300;
        const double sq_tol = 1e-12 * sum_sq_abs(input.values) + 1e-300;
        EXPECT_NEAR(got.sum, expected.sum, sum_tol)
            << simd->name << " n=" << n << " " << input.name;
        EXPECT_NEAR(got.sum_sq, expected.sum_sq, sq_tol)
            << simd->name << " n=" << n << " " << input.name;
      }
    }
  }
}

TEST_F(KernelParity, CenteredSumSq) {
  const KernelTable& scalar = scalar_kernels();
  for (const KernelTable* simd : simd_tables()) {
    for (const std::size_t n : kLengths) {
      for (const auto& input : input_cases(n, n + 1)) {
        const double mean =
            scalar.stats(input.values.data(), n).sum / static_cast<double>(n);
        const double expected =
            scalar.centered_sum_sq(input.values.data(), n, mean);
        const double got = simd->centered_sum_sq(input.values.data(), n, mean);
        // Centered terms are bounded by (|v| + |mean|)^2.
        double term_bound = 0.0;
        for (const float v : input.values) {
          const double t = std::abs(static_cast<double>(v)) + std::abs(mean);
          term_bound += t * t;
        }
        EXPECT_NEAR(got, expected, 1e-12 * term_bound + 1e-300)
            << simd->name << " n=" << n << " " << input.name;
      }
    }
  }
}

TEST_F(KernelParity, ResidualAddFamilyBitIdentical) {
  for (const KernelTable* simd : simd_tables()) {
    for (const std::size_t n : kLengths) {
      for (const auto& input : input_cases(n, n + 2)) {
        common::Rng rng(n + 7);
        std::vector<float> residual(n);
        rng.fill_gaussian(residual, 0.0, 1.0);

        auto h_scalar = input.values;
        auto h_simd = input.values;
        scalar_kernels().residual_add(h_scalar.data(), residual.data(), n);
        simd->residual_add(h_simd.data(), residual.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(h_simd[i], h_scalar[i])
              << simd->name << " residual_add n=" << n << " " << input.name;
        }

        h_scalar = input.values;
        h_simd = input.values;
        std::vector<float> dst_scalar(n), dst_simd(n);
        scalar_kernels().residual_add_copy(h_scalar.data(), residual.data(),
                                           dst_scalar.data(), n);
        simd->residual_add_copy(h_simd.data(), residual.data(), dst_simd.data(),
                                n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(h_simd[i], h_scalar[i]);
          ASSERT_EQ(dst_simd[i], dst_scalar[i]);
        }

        h_scalar = input.values;
        h_simd = input.values;
        const SumStats expected = scalar_kernels().residual_add_stats(
            h_scalar.data(), residual.data(), n);
        const SumStats got =
            simd->residual_add_stats(h_simd.data(), residual.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(h_simd[i], h_scalar[i])
              << simd->name << " residual_add_stats n=" << n << " "
              << input.name;
        }
        EXPECT_NEAR(got.sum, expected.sum, 1e-12 * sum_abs(h_scalar) + 1e-300);
        EXPECT_NEAR(got.sum_sq, expected.sum_sq,
                    1e-12 * sum_sq_abs(h_scalar) + 1e-300);
      }
    }
  }
}

TEST_F(KernelParity, NormalizeAffineWithinOneUlp) {
  for (const KernelTable* simd : simd_tables()) {
    for (const std::size_t n : kLengths) {
      for (const auto& input : input_cases(n, n + 3)) {
        common::Rng rng(n + 11);
        std::vector<float> alpha(n), beta(n);
        rng.fill_gaussian(alpha, 1.0, 0.2);
        rng.fill_gaussian(beta, 0.0, 0.5);
        const double mean = 0.125;
        const double isd = 0.75;
        for (const bool with_alpha : {false, true}) {
          for (const bool with_beta : {false, true}) {
            std::vector<float> out_scalar(n), out_simd(n);
            const float* a = with_alpha ? alpha.data() : nullptr;
            const float* b = with_beta ? beta.data() : nullptr;
            scalar_kernels().normalize_affine(input.values.data(), n, mean, isd,
                                              a, b, out_scalar.data());
            simd->normalize_affine(input.values.data(), n, mean, isd, a, b,
                                   out_simd.data());
            for (std::size_t i = 0; i < n; ++i) {
              ASSERT_LE(ulp_distance(out_simd[i], out_scalar[i]), 1)
                  << simd->name << " n=" << n << " " << input.name
                  << " alpha=" << with_alpha << " beta=" << with_beta
                  << " i=" << i << " scalar=" << out_scalar[i]
                  << " simd=" << out_simd[i];
            }
          }
        }
      }
    }
  }
}

TEST_F(KernelParity, QuantizeDequantize) {
  for (const KernelTable* simd : simd_tables()) {
    for (const std::size_t n : kLengths) {
      for (auto& input : input_cases(n, n + 4)) {
        // Splice in edge values where the length allows.
        if (n >= 8) {
          input.values[1] = -0.0f;
          input.values[2] = 1e-41f;  // denormal
          input.values[3] = std::numeric_limits<float>::infinity();
          input.values[4] = -std::numeric_limits<float>::infinity();
          input.values[5] = std::numeric_limits<float>::quiet_NaN();
          input.values[6] = 65504.0f;
        }
        for (const auto format :
             {numerics::NumericFormat::kFP32, numerics::NumericFormat::kFP16,
              numerics::NumericFormat::kBF16, numerics::NumericFormat::kINT8}) {
          float scale = 1.0f;
          if (format == numerics::NumericFormat::kINT8) {
            scale = 0.03125f;  // fixed: choose_int8_scale rejects inf inputs
          }
          auto got_scalar = input.values;
          auto got_simd = input.values;
          scalar_kernels().quantize_dequantize(got_scalar.data(), n, format,
                                               scale);
          simd->quantize_dequantize(got_simd.data(), n, format, scale);
          for (std::size_t i = 0; i < n; ++i) {
            if (std::isnan(got_scalar[i]) || std::isnan(got_simd[i])) {
              // FP16 NaN payloads may differ between backends; NaN-ness not.
              ASSERT_TRUE(std::isnan(got_scalar[i]) && std::isnan(got_simd[i]))
                  << simd->name << " " << numerics::to_string(format)
                  << " n=" << n << " i=" << i;
              continue;
            }
            ASSERT_EQ(got_simd[i], got_scalar[i])
                << simd->name << " " << numerics::to_string(format)
                << " n=" << n << " " << input.name << " i=" << i
                << " in=" << input.values[i];
          }
        }
      }
    }
  }
}

TEST_F(KernelParity, FusedNormsWithinFourUlp) {
  for (const KernelTable* simd : simd_tables()) {
    for (const std::size_t n : kLengths) {
      common::Rng rng(n + 13);
      std::vector<float> base(n), residual(n), alpha(n), beta(n);
      rng.fill_gaussian(base, 0.3, 1.5);
      rng.fill_gaussian(residual, 0.0, 1.0);
      rng.fill_gaussian(alpha, 1.0, 0.1);
      rng.fill_gaussian(beta, 0.0, 0.2);

      for (const bool layernorm : {false, true}) {
        auto h_scalar = base;
        auto h_simd = base;
        std::vector<float> out_scalar(n), out_simd(n);
        if (layernorm) {
          residual_add_layernorm(scalar_kernels(), h_scalar, residual, alpha,
                                 beta, out_scalar, 1e-5);
          residual_add_layernorm(*simd, h_simd, residual, alpha, beta, out_simd,
                                 1e-5);
        } else {
          residual_add_rmsnorm(scalar_kernels(), h_scalar, residual, alpha,
                               beta, out_scalar, 1e-5);
          residual_add_rmsnorm(*simd, h_simd, residual, alpha, beta, out_simd,
                               1e-5);
        }
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(h_simd[i], h_scalar[i]);  // float adds are elementwise
          ASSERT_LE(ulp_distance(out_simd[i], out_scalar[i]), 4)
              << simd->name << (layernorm ? " layernorm" : " rmsnorm")
              << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace haan::kernels
