// Autotuner decision semantics: memoization, cache determinism (a cache file
// written by one tuning run pins the next run to the same choices), graceful
// fallback on corrupt or stale caches, and the static-dispatch guarantees of
// HAAN_AUTOTUNE=0. Tests drive the tuner through reset_autotune_for_testing()
// + setenv rather than forking, so each case states the environment it needs
// and restores it on exit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/json_lite.hpp"
#include "kernels/autotune.hpp"
#include "kernels/kernels.hpp"

namespace haan::kernels {
namespace {

/// Small widths keep measurement cheap: the tuner's iteration clamp gives
/// ~2M touched floats per timed rep regardless of d.
constexpr std::size_t kD = 96;

/// RAII environment override restoring the previous value (or unsetting).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

/// Fresh tuner state with no cache and the given HAAN_AUTOTUNE value. Also
/// clears HAAN_FORCE_SCALAR: the forced-scalar CI pass runs this suite too,
/// and these tests are about tuner semantics, which the scalar override
/// would otherwise short-circuit (that interaction has its own test below).
struct TunerFixture {
  ScopedEnv mode;
  ScopedEnv env_cache;
  ScopedEnv no_scalar;

  explicit TunerFixture(const char* autotune_mode)
      : mode("HAAN_AUTOTUNE", autotune_mode),
        env_cache("HAAN_AUTOTUNE_CACHE", nullptr),
        no_scalar("HAAN_FORCE_SCALAR", nullptr) {
    reset_autotune_for_testing();
  }
  ~TunerFixture() { reset_autotune_for_testing(); }
};

std::string temp_cache_path(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / (std::string("haan_autotune_test_") + tag + ".json")).string();
}

TEST(Autotune, OffModeReturnsStaticDispatch) {
  TunerFixture fx("0");
  EXPECT_EQ(autotune_mode(), AutotuneMode::kOff);
  EXPECT_FALSE(autotune_enabled());
  const AutotuneChoice& choice = tuned_for(kD);
  EXPECT_EQ(choice.table, &active());
  EXPECT_EQ(choice.source, AutotuneChoice::Source::kStatic);
  EXPECT_FALSE(choice.cache_hit);
  EXPECT_EQ(&tuned_table(kD), &active());
}

TEST(Autotune, ChoiceIsMemoizedAndRunnable) {
  TunerFixture fx("1");
  const AutotuneChoice& first = tuned_for(kD);
  ASSERT_NE(first.table, nullptr);
  // The chosen table must be runnable on this CPU (resolvable by name).
  EXPECT_EQ(find_kernel_table(first.table->name), first.table);
  // Memoized: the same object, and therefore the same table, every time.
  const AutotuneChoice& second = tuned_for(kD);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.table, second.table);
}

TEST(Autotune, SafeModeCandidatesStayInActiveFamily) {
  TunerFixture fx(nullptr);  // unset -> safe mode
  EXPECT_EQ(autotune_mode(), AutotuneMode::kSafe);
  const std::string family = active_name();
  for (const KernelTable* table : autotune_candidates()) {
    const std::string name = table->name;
    EXPECT_TRUE(name == family || name.rfind(family + "-", 0) == 0)
        << name << " not in family " << family;
  }
  // Safe-mode winners are value-identical to static dispatch by construction,
  // so the choice can never change norm outputs.
  const AutotuneChoice& choice = tuned_for(kD);
  const std::string chosen = choice.table->name;
  EXPECT_TRUE(chosen == family || chosen.rfind(family + "-", 0) == 0);
}

TEST(Autotune, CacheRoundTripPinsChoices) {
  const std::string path = temp_cache_path("roundtrip");
  std::filesystem::remove(path);

  std::string first_table;
  {
    TunerFixture fx("1");
    set_autotune_cache_path(path);
    const AutotuneChoice& choice = tuned_for(kD);
    first_table = choice.table->name;
    EXPECT_FALSE(choice.cache_hit);  // cold cache: measured fresh
    EXPECT_TRUE(std::filesystem::exists(path));
  }

  // Second "process": fresh tuner state, same cache file. The decision must
  // come from the cache and match the first run exactly — determinism does
  // not depend on the noisy re-measurement.
  {
    TunerFixture fx("1");
    set_autotune_cache_path(path);
    const AutotuneChoice& choice = tuned_for(kD);
    EXPECT_TRUE(choice.cache_hit);
    EXPECT_EQ(choice.source, AutotuneChoice::Source::kCache);
    EXPECT_EQ(std::string(choice.table->name), first_table);
  }
  std::filesystem::remove(path);
}

TEST(Autotune, CorruptCacheFallsBackToMeasurement) {
  const std::string path = temp_cache_path("corrupt");
  ASSERT_TRUE(common::write_file(path, "{not json at all"));

  TunerFixture fx("1");
  set_autotune_cache_path(path);
  const AutotuneChoice& choice = tuned_for(kD);
  ASSERT_NE(choice.table, nullptr);
  EXPECT_FALSE(choice.cache_hit);
  // The tuner must also have REWRITTEN the cache with a valid document.
  const auto doc = common::Json::parse(common::read_file(path).value_or(""));
  ASSERT_TRUE(doc.has_value());
  EXPECT_NE(doc->find("entries"), nullptr);
  std::filesystem::remove(path);
}

TEST(Autotune, StaleCpuKeyFallsBackToMeasurement) {
  const std::string path = temp_cache_path("stale");
  // A structurally valid cache recorded on a different machine: the cpu key
  // cannot match, so every entry is ignored and the bogus table name is
  // never resolved.
  common::Json::Object doc;
  doc["version"] = 1;
  doc["cpu"] = "sparc+vis3";
  doc["mode"] = "full";
  common::Json::Array entries;
  common::Json::Object entry;
  entry["d"] = kD;
  entry["table"] = "vis3-nt";
  entry["rows_tile"] = 64;
  entry["ns_per_row"] = 1.0;
  entries.push_back(entry);
  doc["entries"] = entries;
  ASSERT_TRUE(common::write_file(path, common::Json(doc).dump()));

  TunerFixture fx("1");
  set_autotune_cache_path(path);
  const AutotuneChoice& choice = tuned_for(kD);
  ASSERT_NE(choice.table, nullptr);
  EXPECT_FALSE(choice.cache_hit);
  EXPECT_EQ(find_kernel_table(choice.table->name), choice.table);
  std::filesystem::remove(path);
}

TEST(Autotune, UnknownTableNameInCacheIsIgnored) {
  const std::string path = temp_cache_path("unknown_table");
  // Correct cpu key + mode, but an entry naming a table this build does not
  // have (e.g. a cache from a newer version). Must fall back to measuring.
  common::Json::Object doc;
  doc["version"] = 1;
  {
    TunerFixture probe("1");
    // Recover the real cpu key by writing a fresh cache once.
    set_autotune_cache_path(path);
    tuned_for(kD);
  }
  const auto real = common::Json::parse(common::read_file(path).value_or(""));
  ASSERT_TRUE(real.has_value());
  const common::Json* cpu = real->find("cpu");
  ASSERT_NE(cpu, nullptr);
  doc["cpu"] = cpu->as_string();
  doc["mode"] = "full";
  common::Json::Array entries;
  common::Json::Object entry;
  entry["d"] = kD;
  entry["table"] = "avx1024-quantum";
  entry["rows_tile"] = 64;
  entry["ns_per_row"] = 1.0;
  entries.push_back(entry);
  doc["entries"] = entries;
  ASSERT_TRUE(common::write_file(path, common::Json(doc).dump()));

  TunerFixture fx("1");
  set_autotune_cache_path(path);
  const AutotuneChoice& choice = tuned_for(kD);
  ASSERT_NE(choice.table, nullptr);
  EXPECT_FALSE(choice.cache_hit);
  EXPECT_EQ(find_kernel_table(choice.table->name), choice.table);
  std::filesystem::remove(path);
}

TEST(Autotune, ForceScalarWinsOverTuning) {
  TunerFixture fx("1");
  ScopedEnv scalar("HAAN_FORCE_SCALAR", "1");  // after fixture: it clears this
  reset_autotune_for_testing();
  EXPECT_FALSE(autotune_enabled());
  const AutotuneChoice& choice = tuned_for(kD);
  EXPECT_EQ(std::string(choice.table->name), "scalar");
  EXPECT_EQ(choice.source, AutotuneChoice::Source::kStatic);
}

TEST(Autotune, MeasureHarnessReturnsFinitePositive) {
  const double ns = measure_rows_ns_per_row(active(), kD, 8, /*reps=*/1);
  EXPECT_GT(ns, 0.0);
  EXPECT_TRUE(std::isfinite(ns));
}

}  // namespace
}  // namespace haan::kernels
