// Tracer contract: disabled sites record nothing, spans nest per thread in
// the exported Chrome trace, begin/end stay balanced under worker churn
// (buffers outlive their threads) and under ring wrap-around (orphan ends
// dropped, open begins closed), flows keep their ids, and the export parses
// with the in-repo JSON parser.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/json_lite.hpp"
#include "obs/trace.hpp"

namespace haan::obs {
namespace {

/// Fresh tracer state per test: clear buffers, default capacity, disabled.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracer().set_enabled(false);
    tracer().reset();
    tracer().set_ring_capacity(1 << 16);
  }
  void TearDown() override {
    tracer().set_enabled(false);
    tracer().reset();
  }
};

/// Parses an exported trace and checks per-thread begin/end balance: depth
/// never goes negative and ends at zero for every tid. Returns the parsed
/// events array.
common::Json::Array parse_balanced(const std::string& json) {
  const auto parsed = common::Json::parse(json);
  EXPECT_TRUE(parsed.has_value()) << "trace is not valid JSON";
  if (!parsed.has_value()) return {};
  const common::Json* events = parsed->find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());

  std::map<int, int> depth;
  for (const common::Json& event : events->as_array()) {
    const std::string& ph = event.find("ph")->as_string();
    const int tid = static_cast<int>(event.find("tid")->as_number());
    if (ph == "B") ++depth[tid];
    if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "unbalanced E on tid " << tid;
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed spans on tid " << tid;
  }
  return events->as_array();
}

TEST_F(TraceTest, DisabledSitesRecordNothing) {
  ASSERT_FALSE(tracing_enabled());
  {
    HAAN_TRACE_SPAN("should-not-appear", "test");
    instant("nor-this", "test");
    flow_begin("flow", "test", 1);
    flow_end("flow", "test", 1);
  }
  EXPECT_EQ(tracer().stats().events, 0u);
}

TEST_F(TraceTest, SpansNestPerThreadInExport) {
  tracer().set_enabled(true);
  set_thread_name("test-main");
  {
    HAAN_TRACE_SPAN("outer", "test", 7, 0);
    {
      HAAN_TRACE_SPAN("inner", "test");
      instant("tick", "test");
    }
    { HAAN_TRACE_SPAN("inner2", "test"); }
  }
  const common::Json::Array events = parse_balanced(tracer().export_chrome_json());

  // Expected order on the single thread: outer-B, inner-B, tick-i, inner-E,
  // inner2-B, inner2-E, outer-E (plus the thread_name metadata record).
  std::vector<std::string> phases;
  std::vector<std::string> begin_names;
  bool saw_thread_name = false;
  for (const common::Json& event : events) {
    const std::string& ph = event.find("ph")->as_string();
    if (ph == "M") {
      saw_thread_name = true;
      EXPECT_EQ(event.find("args")->find("name")->as_string(), "test-main");
      continue;
    }
    phases.push_back(ph);
    if (ph == "B") begin_names.push_back(event.find("name")->as_string());
  }
  EXPECT_TRUE(saw_thread_name);
  EXPECT_EQ(phases, (std::vector<std::string>{"B", "B", "i", "E", "B", "E", "E"}));
  EXPECT_EQ(begin_names, (std::vector<std::string>{"outer", "inner", "inner2"}));
}

TEST_F(TraceTest, SpanArgsSurviveExport) {
  tracer().set_enabled(true);
  { HAAN_TRACE_SPAN("with-args", "test", 3, 9); }
  const common::Json::Array events = parse_balanced(tracer().export_chrome_json());
  bool found = false;
  for (const common::Json& event : events) {
    if (event.find("ph")->as_string() != "B") continue;
    found = true;
    EXPECT_EQ(event.find("args")->find("a")->as_number(), 3.0);
    EXPECT_EQ(event.find("args")->find("b")->as_number(), 9.0);
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, BuffersSurviveWorkerChurnBalanced) {
  tracer().set_enabled(true);
  // Several generations of short-lived workers, all gone before export.
  for (int generation = 0; generation < 3; ++generation) {
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([w] {
        set_thread_name("churn-worker-" + std::to_string(w));
        for (int i = 0; i < 20; ++i) {
          HAAN_TRACE_SPAN("work", "test", static_cast<std::uint32_t>(i));
          HAAN_TRACE_SPAN("sub", "test");
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  const Tracer::Stats stats = tracer().stats();
  EXPECT_GE(stats.threads, 12u);  // 3 generations x 4 workers (+ this thread)
  EXPECT_EQ(stats.dropped, 0u);
  // 12 threads x 20 iterations x 2 spans x 2 events.
  const common::Json::Array events = parse_balanced(tracer().export_chrome_json());
  std::size_t begins = 0;
  for (const common::Json& event : events) {
    if (event.find("ph")->as_string() == "B") ++begins;
  }
  EXPECT_EQ(begins, 12u * 20u * 2u);
}

TEST_F(TraceTest, RingWrapDropsOldestButExportStaysBalanced) {
  tracer().set_ring_capacity(64);
  tracer().set_enabled(true);
  // A fresh thread (ring allocated at the small capacity) records far more
  // events than fit.
  std::thread worker([] {
    for (int i = 0; i < 1000; ++i) {
      HAAN_TRACE_SPAN("wrapped", "test", static_cast<std::uint32_t>(i));
    }
  });
  worker.join();
  const Tracer::Stats stats = tracer().stats();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_LE(stats.events, 64u);
  parse_balanced(tracer().export_chrome_json());
}

TEST_F(TraceTest, OpenSpanAtExportIsClosedAtLastTimestamp) {
  tracer().set_enabled(true);
  ScopedSpan* leaked = new ScopedSpan("still-open", "test");
  instant("later", "test");
  const common::Json::Array events = parse_balanced(tracer().export_chrome_json());
  double begin_ts = -1.0, end_ts = -1.0, instant_ts = -1.0;
  for (const common::Json& event : events) {
    const std::string& ph = event.find("ph")->as_string();
    if (ph == "B") begin_ts = event.find("ts")->as_number();
    if (ph == "E") end_ts = event.find("ts")->as_number();
    if (ph == "i") instant_ts = event.find("ts")->as_number();
  }
  EXPECT_GE(begin_ts, 0.0);
  // The synthesized close lands at the thread's last recorded timestamp.
  EXPECT_EQ(end_ts, instant_ts);
  delete leaked;  // records a real E afterwards; harmless
}

TEST_F(TraceTest, FlowEventsKeepTheirIds) {
  tracer().set_enabled(true);
  {
    HAAN_TRACE_SPAN("produce", "test");
    flow_begin("req", "test", 42);
  }
  std::thread consumer([] {
    HAAN_TRACE_SPAN("consume", "test");
    flow_end("req", "test", 42);
  });
  consumer.join();
  const common::Json::Array events = parse_balanced(tracer().export_chrome_json());
  int start_tid = -1, finish_tid = -1;
  for (const common::Json& event : events) {
    const std::string& ph = event.find("ph")->as_string();
    if (ph == "s") {
      EXPECT_EQ(event.find("id")->as_number(), 42.0);
      start_tid = static_cast<int>(event.find("tid")->as_number());
    }
    if (ph == "f") {
      EXPECT_EQ(event.find("id")->as_number(), 42.0);
      EXPECT_EQ(event.find("bp")->as_string(), "e");
      finish_tid = static_cast<int>(event.find("tid")->as_number());
    }
  }
  ASSERT_NE(start_tid, -1);
  ASSERT_NE(finish_tid, -1);
  EXPECT_NE(start_tid, finish_tid);  // the flow crossed threads
}

TEST_F(TraceTest, ResetForgetsEventsAndDeadThreads) {
  tracer().set_enabled(true);
  std::thread worker([] { HAAN_TRACE_SPAN("gone", "test"); });
  worker.join();
  { HAAN_TRACE_SPAN("live", "test"); }
  EXPECT_GT(tracer().stats().events, 0u);
  tracer().reset();
  EXPECT_EQ(tracer().stats().events, 0u);
  // The live thread keeps recording into its cleared ring.
  { HAAN_TRACE_SPAN("after-reset", "test"); }
  EXPECT_EQ(tracer().stats().events, 2u);
}

}  // namespace
}  // namespace haan::obs
