// SnapshotEmitter contract: the timer emits periodically while started, stop
// (and destruction) always emits one final snapshot so short runs report,
// human lines go through the logger under component "stats", and the JSON
// file holds one parseable object per line.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_lite.hpp"
#include "common/logging.hpp"
#include "obs/snapshot.hpp"

namespace haan::obs {
namespace {

Snapshot make_snapshot(int n) {
  Snapshot snapshot;
  snapshot.human = "sample " + std::to_string(n);
  common::Json::Object json;
  json["n"] = n;
  snapshot.json = json;
  return snapshot;
}

TEST(SnapshotEmitter, StopEmitsFinalSnapshotEvenOnShortRuns) {
  std::atomic<int> samples{0};
  SnapshotEmitter::Options options;
  options.interval = std::chrono::milliseconds(60000);  // never fires on timer
  options.log_human = false;
  SnapshotEmitter emitter([&] { return make_snapshot(samples.fetch_add(1)); },
                          options);
  emitter.start();
  emitter.stop();
  EXPECT_EQ(emitter.emitted(), 1u);  // the final flush
  EXPECT_EQ(samples.load(), 1);
  emitter.stop();  // idempotent
  EXPECT_EQ(emitter.emitted(), 1u);
}

TEST(SnapshotEmitter, EmitsPeriodicallyWhileRunning) {
  std::atomic<int> samples{0};
  SnapshotEmitter::Options options;
  options.interval = std::chrono::milliseconds(5);
  options.log_human = false;
  SnapshotEmitter emitter([&] { return make_snapshot(samples.fetch_add(1)); },
                          options);
  emitter.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  emitter.stop();
  // 60ms at a 5ms interval: at least a handful of timer firings + the final.
  EXPECT_GE(emitter.emitted(), 3u);
}

TEST(SnapshotEmitter, HumanLinesGoThroughLoggerAsStatsComponent) {
  std::vector<std::string> lines;
  common::set_log_sink([&](std::string_view line) { lines.emplace_back(line); });
  common::set_log_format(common::LogFormat::kJson);
  {
    SnapshotEmitter::Options options;
    options.interval = std::chrono::milliseconds(60000);
    SnapshotEmitter emitter([] { return make_snapshot(0); }, options);
    emitter.start();
    emitter.stop();
  }
  common::set_log_sink(nullptr);
  common::set_log_format(common::LogFormat::kHuman);
  ASSERT_EQ(lines.size(), 1u);
  const auto parsed = common::Json::parse(lines[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("component")->as_string(), "stats");
  EXPECT_EQ(parsed->find("msg")->as_string(), "sample 0");
}

TEST(SnapshotEmitter, JsonFileHoldsOneParseableObjectPerLine) {
  const std::string path = ::testing::TempDir() + "haan_snapshot_test.jsonl";
  std::remove(path.c_str());
  std::atomic<int> samples{0};
  {
    SnapshotEmitter::Options options;
    options.interval = std::chrono::milliseconds(5);
    options.json_path = path;
    options.log_human = false;
    SnapshotEmitter emitter([&] { return make_snapshot(samples.fetch_add(1)); },
                            options);
    emitter.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    emitter.stop();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int parsed_lines = 0;
  int last_n = -1;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto parsed = common::Json::parse(line);
    ASSERT_TRUE(parsed.has_value()) << "unparseable line: " << line;
    const int n = static_cast<int>(parsed->find("n")->as_number());
    EXPECT_EQ(n, last_n + 1);  // snapshots appear in emission order
    last_n = n;
    ++parsed_lines;
  }
  EXPECT_GE(parsed_lines, 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace haan::obs
