// Row-block vs per-row bit-identity across the whole normalization seam: a
// transformer forward through the batched entry points (normalize_rows /
// residual_add_normalize_rows, the production path in block.cpp) must produce
// exactly the hidden states of the seed's per-row execution for every
// provider the factory can build, over pre-norm and post-norm configs,
// observer on and off, odd row counts and prime d. The per-row reference is
// obtained by wrapping each provider in an adapter that exposes only the
// per-row virtuals, so the NormProvider default batch loop reproduces the
// seed's token-at-a-time execution with the same provider semantics.
//
// Both runs use the same dispatched kernel backend, and the row-block kernels
// are per-backend bit-identical to the per-row kernels, so the comparison is
// EQ (not NEAR) under scalar *and* SIMD dispatch; CI's HAAN_FORCE_SCALAR run
// pins the scalar guarantee.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/provider_factory.hpp"
#include "core/skip_planner.hpp"
#include "model/transformer.hpp"

namespace haan::model {
namespace {

/// Forces the seed's per-row execution: forwards the per-row virtuals to the
/// wrapped provider and inherits NormProvider's default row-block loops, so a
/// batched caller degenerates to one provider call per token row.
class PerRowAdapter final : public NormProvider {
 public:
  explicit PerRowAdapter(NormProvider& inner) : inner_(inner) {}

  void begin_sequence() override { inner_.begin_sequence(); }

  void normalize(std::size_t layer_index, std::size_t position, NormKind kind,
                 std::span<const float> z, std::span<const float> alpha,
                 std::span<const float> beta, std::span<float> out) override {
    inner_.normalize(layer_index, position, kind, z, alpha, beta, out);
  }

  void residual_add_normalize(std::size_t layer_index, std::size_t position,
                              NormKind kind, std::span<float> h,
                              std::span<const float> residual,
                              std::span<const float> alpha,
                              std::span<const float> beta,
                              std::span<float> out) override {
    inner_.residual_add_normalize(layer_index, position, kind, h, residual,
                                  alpha, beta, out);
  }

 private:
  NormProvider& inner_;
};

/// Small models with prime d (n_heads = 1 so attention still divides) and
/// enough blocks for the skip plan to cover computed, anchor and skipped
/// layers.
ModelConfig parity_model(NormPlacement placement, NormKind kind) {
  ModelConfig config;
  config.name = "rowblock-parity";
  config.n_blocks = 3;
  config.d_model = 61;  // prime
  config.n_heads = 1;
  config.d_ff = 64;
  config.vocab_size = 97;
  config.max_seq_len = 32;
  config.norm_kind = kind;
  config.placement = placement;
  config.final_norm = true;
  config.seed = 11;
  return config;
}

core::ProviderOptions provider_options(const ModelConfig& config) {
  core::ProviderOptions options;
  options.width = config.d_model;
  options.model_name = config.name;
  // A plan covering anchor layer 1 and skipped layers 2..4 exercises the
  // predictor's record/predict paths through the batched seam.
  options.plan.enabled = true;
  options.plan.start = 1;
  options.plan.end = 4;
  options.plan.decay = -0.05;
  return options;
}

std::vector<int> parity_tokens(const ModelConfig& config, std::size_t n) {
  common::Rng rng(17);
  std::vector<int> tokens(n);
  for (auto& t : tokens) {
    t = static_cast<int>(rng.uniform_index(config.vocab_size));
  }
  return tokens;
}

struct Observation {
  std::size_t layer;
  std::size_t position;
  std::vector<float> z;
};

NormInputObserver collecting_observer(std::vector<Observation>& sink) {
  return [&sink](std::size_t layer, std::size_t position,
                 std::span<const float> z) {
    sink.push_back({layer, position, {z.begin(), z.end()}});
  };
}

TEST(RowBlockParity, AllProvidersAllConfigsBitIdenticalToPerRow) {
  const std::size_t seq = 7;  // odd row count
  for (const std::string& name : core::norm_provider_names()) {
    for (const NormPlacement placement :
         {NormPlacement::kPreNorm, NormPlacement::kPostNorm}) {
      for (const NormKind kind : {NormKind::kLayerNorm, NormKind::kRMSNorm}) {
        for (const bool with_observer : {false, true}) {
          const ModelConfig config = parity_model(placement, kind);
          const core::ProviderOptions options = provider_options(config);
          Transformer model(config);
          const auto tokens = parity_tokens(config, seq);
          const std::string label = name + (with_observer ? "+obs" : "") +
                                    (placement == NormPlacement::kPreNorm
                                         ? " pre-"
                                         : " post-") +
                                    (kind == NormKind::kLayerNorm ? "ln" : "rms");

          // Reference: per-row execution via the adapter (fresh provider).
          auto ref_provider = core::make_norm_provider(name, options);
          ASSERT_NE(ref_provider, nullptr) << label;
          PerRowAdapter per_row(*ref_provider);
          std::vector<Observation> ref_observed;
          if (with_observer) {
            model.set_norm_observer(collecting_observer(ref_observed));
          } else {
            model.set_norm_observer({});
          }
          const tensor::Tensor ref = model.forward_hidden(tokens, per_row);

          // Batched: the provider's own row-block overrides (fresh provider,
          // same configuration => same per-sequence predictor state).
          auto batched_provider = core::make_norm_provider(name, options);
          std::vector<Observation> batched_observed;
          if (with_observer) {
            model.set_norm_observer(collecting_observer(batched_observed));
          }
          const tensor::Tensor batched =
              model.forward_hidden(tokens, *batched_provider);
          model.set_norm_observer({});

          ASSERT_EQ(ref.shape(), batched.shape()) << label;
          const auto ref_data = ref.data();
          const auto batched_data = batched.data();
          for (std::size_t i = 0; i < ref_data.size(); ++i) {
            ASSERT_EQ(batched_data[i], ref_data[i])
                << label << " element " << i;
          }

          if (with_observer) {
            // The observer must see every row's norm input bit-identically;
            // rows of one layer may be reported in a different interleaving
            // than the per-row loop, but the (layer, position) -> vector map
            // is identical.
            ASSERT_EQ(batched_observed.size(), ref_observed.size()) << label;
            std::map<std::pair<std::size_t, std::size_t>, std::vector<float>>
                ref_map;
            for (const auto& obs : ref_observed) {
              ref_map[{obs.layer, obs.position}] = obs.z;
            }
            for (const auto& obs : batched_observed) {
              const auto it = ref_map.find({obs.layer, obs.position});
              ASSERT_NE(it, ref_map.end()) << label;
              ASSERT_EQ(obs.z.size(), it->second.size()) << label;
              for (std::size_t i = 0; i < obs.z.size(); ++i) {
                ASSERT_EQ(obs.z[i], it->second[i])
                    << label << " layer " << obs.layer << " pos "
                    << obs.position << " i=" << i;
              }
            }
          }

          // HAAN variants: the per-row counters must agree exactly between
          // the two execution models, and the batched run must actually have
          // used the row-block path.
          const auto* ref_haan = core::as_haan_provider(ref_provider.get());
          const auto* batched_haan =
              core::as_haan_provider(batched_provider.get());
          ASSERT_EQ(ref_haan == nullptr, batched_haan == nullptr) << label;
          if (ref_haan != nullptr) {
            EXPECT_EQ(batched_haan->counters().norm_calls,
                      ref_haan->counters().norm_calls)
                << label;
            EXPECT_EQ(batched_haan->counters().isd_computed,
                      ref_haan->counters().isd_computed)
                << label;
            EXPECT_EQ(batched_haan->counters().isd_predicted,
                      ref_haan->counters().isd_predicted)
                << label;
            EXPECT_EQ(batched_haan->counters().elements_read,
                      ref_haan->counters().elements_read)
                << label;
            EXPECT_EQ(ref_haan->counters().batched_norm_calls, 0u) << label;
            EXPECT_EQ(batched_haan->counters().batched_norm_calls,
                      config.norm_layer_count())
                << label;
            EXPECT_EQ(batched_haan->counters().batched_rows,
                      config.norm_layer_count() * seq)
                << label;
          }
        }
      }
    }
  }
}

TEST(RowBlockParity, BatchedEntryPointsValidateShapes) {
  ExactNormProvider exact;
  std::vector<float> x(12, 1.0f), out(12);
  // rows must divide the block size.
  EXPECT_DEATH(exact.normalize_rows(0, 0, NormKind::kRMSNorm, 5, x, {}, {}, out),
               "");
}

}  // namespace
}  // namespace haan::model
