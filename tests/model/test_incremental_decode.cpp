// The chunked/incremental bit-identity invariant, at the model layer: feeding
// a sequence through forward_hidden_batch in ANY chunking — whole-prompt,
// fixed-size prefill chunks, single-row "decode" steps, or uneven per-sequence
// schedules — across any series of (mixed) packs with per-session KvCaches
// must reproduce, row for row, the exact bits of the one-shot forward. Runs
// every factory provider over pre/post-norm, serial and threaded span pools,
// and chunk sizes {whole, 5, 2, 1}; a separate case staggers chunk schedules
// so packs mix spans at different start positions, and a counters case checks
// the HAAN per-row work (norm calls, ISD splits, element reads) is invariant
// under chunking.
//
// Why this holds: attention is the only cross-row op, and the cached path
// replicates the one-shot arithmetic order per row (scores over the full
// cached prefix, the same softmax summation order, ascending-j context
// accumulation); everything else is row-wise, and providers key predictor
// anchors by packed row index within each forward, so every row — fed exactly
// once under any chunking — anchors on its own data.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/provider_factory.hpp"
#include "model/kv_cache.hpp"
#include "model/transformer.hpp"

namespace haan::model {
namespace {

ModelConfig decode_model(NormPlacement placement, NormKind kind) {
  ModelConfig config;
  config.name = "incremental-parity";
  config.n_blocks = 3;
  config.d_model = 61;  // prime
  config.n_heads = 1;
  config.d_ff = 64;
  config.vocab_size = 97;
  config.max_seq_len = 32;
  config.norm_kind = kind;
  config.placement = placement;
  config.final_norm = true;
  config.seed = 11;
  return config;
}

core::ProviderOptions provider_options(const ModelConfig& config,
                                       std::size_t norm_threads) {
  core::ProviderOptions options;
  options.width = config.d_model;
  options.model_name = config.name;
  options.norm_threads = norm_threads;
  options.plan.enabled = true;
  options.plan.start = 1;
  options.plan.end = 4;
  options.plan.decay = -0.05;
  return options;
}

std::vector<std::vector<int>> make_sequences(const ModelConfig& config,
                                             const std::vector<std::size_t>& lens) {
  common::Rng rng(23);
  std::vector<std::vector<int>> sequences;
  for (const std::size_t len : lens) {
    std::vector<int> tokens(len);
    for (auto& t : tokens) {
      t = static_cast<int>(rng.uniform_index(config.vocab_size));
    }
    sequences.push_back(std::move(tokens));
  }
  return sequences;
}

/// Feeds every sequence incrementally: round r packs the next chunk of each
/// unfinished sequence (chunks[s] rows, 0 = whole remainder) into ONE forward
/// with that sequence's KvCache, and appends each span's output rows to the
/// per-sequence accumulator. Sequences finish at different rounds, so later
/// packs shrink — mixing spans at different start positions throughout.
std::vector<std::vector<float>> run_incremental(
    const Transformer& model, const std::vector<std::vector<int>>& sequences,
    const std::vector<std::size_t>& chunks, NormProvider& provider,
    RowPartitionPool* span_pool) {
  const std::size_t d = model.config().d_model;
  std::vector<KvCache> caches;
  std::vector<std::size_t> fed(sequences.size(), 0);
  std::vector<std::vector<float>> accumulated(sequences.size());
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    caches.push_back(model.make_kv_cache());
  }

  for (;;) {
    std::vector<std::span<const int>> spans;
    std::vector<std::size_t> lengths, starts;
    std::vector<KvCache*> pack_caches;
    std::vector<std::size_t> members;
    for (std::size_t s = 0; s < sequences.size(); ++s) {
      const std::size_t remaining = sequences[s].size() - fed[s];
      if (remaining == 0) continue;
      const std::size_t rows =
          chunks[s] == 0 ? remaining : std::min(chunks[s], remaining);
      spans.push_back(std::span<const int>(sequences[s]).subspan(fed[s], rows));
      lengths.push_back(rows);
      starts.push_back(fed[s]);
      pack_caches.push_back(&caches[s]);
      members.push_back(s);
    }
    if (members.empty()) break;

    const BatchLayout layout = BatchLayout::from_spans(lengths, starts);
    const tensor::Tensor out =
        model.forward_hidden_batch(spans, layout, provider, span_pool,
                                   pack_caches);
    for (std::size_t i = 0; i < members.size(); ++i) {
      const SequenceSpan& span = layout.span(i);
      const auto rows = out.data().subspan(span.row_begin * d, span.rows * d);
      auto& acc = accumulated[members[i]];
      acc.insert(acc.end(), rows.begin(), rows.end());
      fed[members[i]] += span.rows;
    }
  }
  return accumulated;
}

void expect_matches_one_shot(const Transformer& model,
                             const std::vector<std::vector<int>>& sequences,
                             const std::vector<std::vector<float>>& incremental,
                             NormProvider& reference_provider,
                             const std::string& label) {
  ASSERT_EQ(incremental.size(), sequences.size()) << label;
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    const tensor::Tensor expected =
        model.forward_hidden(sequences[s], reference_provider);
    ASSERT_EQ(incremental[s].size(), expected.data().size())
        << label << " seq " << s;
    for (std::size_t i = 0; i < incremental[s].size(); ++i) {
      ASSERT_EQ(incremental[s][i], expected.data()[i])
          << label << " seq " << s << " element " << i;
    }
  }
}

TEST(IncrementalDecodeParity, AnyChunkingMatchesOneShotForAllProviders) {
  // Lengths mix a single-token prompt with ragged longer ones; chunk size 1
  // is the decode regime (every row its own step).
  const std::vector<std::size_t> lens = {5, 1, 7};
  for (const NormPlacement placement :
       {NormPlacement::kPreNorm, NormPlacement::kPostNorm}) {
    const ModelConfig config = decode_model(placement, NormKind::kLayerNorm);
    const Transformer model(config);
    const auto sequences = make_sequences(config, lens);
    for (const std::string& name : core::norm_provider_names()) {
      for (const std::size_t chunk : {0u, 5u, 2u, 1u}) {
        for (const std::size_t threads : {1u, 3u}) {
          const std::string label =
              name + (placement == NormPlacement::kPreNorm ? " pre" : " post") +
              " chunk=" + std::to_string(chunk) +
              " threads=" + std::to_string(threads);
          auto provider = core::make_norm_provider(
              name, provider_options(config, threads));
          ASSERT_NE(provider, nullptr);
          RowPartitionPool span_pool(threads);
          const std::vector<std::size_t> chunks(lens.size(), chunk);
          const auto incremental = run_incremental(model, sequences, chunks,
                                                   *provider, &span_pool);
          auto reference =
              core::make_norm_provider(name, provider_options(config, 1));
          expect_matches_one_shot(model, sequences, incremental, *reference,
                                  label);
        }
      }
    }
  }
}

TEST(IncrementalDecodeParity, StaggeredMixedPacksMatchOneShot) {
  // Uneven per-sequence schedules: seq 0 advances 3 rows per pack, seq 1 one
  // row (pure decode cadence), seq 2 arrives whole. Packs therefore mix a
  // mid-prompt chunk, a single decode-style row and a full prompt, then decay
  // to smaller mixes as sequences finish — the serve-layer pack shapes.
  const ModelConfig config =
      decode_model(NormPlacement::kPreNorm, NormKind::kRMSNorm);
  const Transformer model(config);
  const auto sequences = make_sequences(config, {8, 6, 4});
  const std::vector<std::size_t> chunks = {3, 1, 0};
  for (const std::string name : {"haan", "haan-int8", "exact"}) {
    auto provider = core::make_norm_provider(name, provider_options(config, 2));
    RowPartitionPool span_pool(2);
    const auto incremental =
        run_incremental(model, sequences, chunks, *provider, &span_pool);
    auto reference = core::make_norm_provider(name, provider_options(config, 1));
    expect_matches_one_shot(model, sequences, incremental, *reference,
                            std::string(name) + " staggered");
  }
}

TEST(IncrementalDecodeParity, HaanPerRowCountersInvariantUnderChunking) {
  const ModelConfig config =
      decode_model(NormPlacement::kPreNorm, NormKind::kLayerNorm);
  const Transformer model(config);
  const auto sequences = make_sequences(config, {5, 1, 7});

  auto one_shot = core::make_norm_provider("haan", provider_options(config, 1));
  for (const auto& tokens : sequences) model.forward_hidden(tokens, *one_shot);
  const auto* ref = core::as_haan_provider(one_shot.get());
  ASSERT_NE(ref, nullptr);

  auto chunked = core::make_norm_provider("haan", provider_options(config, 1));
  run_incremental(model, sequences, {2, 2, 2}, *chunked, nullptr);
  const auto* inc = core::as_haan_provider(chunked.get());
  ASSERT_NE(inc, nullptr);

  // Every row is fed exactly once under any chunking, so per-row work is
  // identical; only the batching shape (calls per row-block) differs.
  EXPECT_EQ(inc->counters().norm_calls, ref->counters().norm_calls);
  EXPECT_EQ(inc->counters().isd_computed, ref->counters().isd_computed);
  EXPECT_EQ(inc->counters().isd_predicted, ref->counters().isd_predicted);
  EXPECT_EQ(inc->counters().elements_read, ref->counters().elements_read);
  EXPECT_EQ(inc->counters().fused_residual_norms,
            ref->counters().fused_residual_norms);
  EXPECT_EQ(inc->counters().batched_rows, ref->counters().batched_rows);
  EXPECT_GT(inc->counters().batched_norm_calls,
            ref->counters().batched_norm_calls);
}

TEST(IncrementalDecodeParity, KvCacheTracksPositionsAndMemory) {
  const ModelConfig config =
      decode_model(NormPlacement::kPreNorm, NormKind::kLayerNorm);
  const Transformer model(config);
  KvCache cache = model.make_kv_cache();
  ASSERT_TRUE(cache.valid());
  EXPECT_EQ(cache.blocks(), config.n_blocks);
  EXPECT_EQ(cache.d_model(), config.d_model);
  EXPECT_EQ(cache.position(), 0u);
  EXPECT_EQ(cache.memory_bytes(), 0u);  // nothing cached, nothing allocated

  // Forwards advance the committed position by the rows fed.
  const auto sequences = make_sequences(config, {6});
  auto provider = core::make_norm_provider("exact", provider_options(config, 1));
  std::vector<std::span<const int>> spans = {
      std::span<const int>(sequences[0]).subspan(0, 4)};
  std::vector<KvCache*> caches = {&cache};
  model.forward_hidden_batch(
      spans, BatchLayout::single(4), *provider, nullptr, caches);
  EXPECT_EQ(cache.position(), 4u);
  EXPECT_GT(cache.memory_bytes(), 0u);
  for (std::size_t b = 0; b < cache.blocks(); ++b) {
    EXPECT_EQ(cache.rows(b), 4u);
    EXPECT_EQ(cache.k(b).size(), 4u * config.d_model);
    EXPECT_EQ(cache.v(b).size(), 4u * config.d_model);
  }
  spans[0] = std::span<const int>(sequences[0]).subspan(4, 2);
  model.forward_hidden_batch(
      spans, BatchLayout::single(2, /*start_position=*/4), *provider, nullptr,
      caches);
  EXPECT_EQ(cache.position(), 6u);
}

TEST(IncrementalDecodeParity, ForwardRejectsCachePositionMismatch) {
  const ModelConfig config =
      decode_model(NormPlacement::kPreNorm, NormKind::kLayerNorm);
  const Transformer model(config);
  KvCache cache = model.make_kv_cache();
  const auto sequences = make_sequences(config, {4});
  auto provider = core::make_norm_provider("exact", provider_options(config, 1));
  const std::vector<std::span<const int>> spans = {
      std::span<const int>(sequences[0])};
  const std::vector<KvCache*> caches = {&cache};
  // Cache position is 0; a layout claiming the rows continue at 2 must abort
  // rather than silently attend over a hole.
  EXPECT_DEATH(model.forward_hidden_batch(spans,
                                          BatchLayout::single(4, 2), *provider,
                                          nullptr, caches),
               "");
}

}  // namespace
}  // namespace haan::model
