#include "model/config.hpp"

#include <gtest/gtest.h>

namespace haan::model {
namespace {

TEST(ModelConfig, NormLayerCountsMatchPaper) {
  // Paper Fig 2: 64 norm layers in LLaMA-7B; §V-B: 65 in OPT-2.7B, and the
  // GPT2-1.5B skip range (85, 92) requires 97.
  EXPECT_EQ(llama7b_surrogate().norm_layer_count(), 64u);
  EXPECT_EQ(opt2p7b_surrogate().norm_layer_count(), 65u);
  EXPECT_EQ(gpt2_1p5b_surrogate().norm_layer_count(), 97u);
  EXPECT_EQ(gpt2_355m_surrogate().norm_layer_count(), 49u);
  EXPECT_EQ(gpt2_117m_surrogate().norm_layer_count(), 25u);
}

TEST(ModelConfig, NormKinds) {
  EXPECT_EQ(llama7b_surrogate().norm_kind, NormKind::kRMSNorm);
  EXPECT_EQ(opt2p7b_surrogate().norm_kind, NormKind::kLayerNorm);
  EXPECT_EQ(gpt2_1p5b_surrogate().norm_kind, NormKind::kLayerNorm);
}

TEST(ModelConfig, LlamaUsesGatedMlpNoFinalNormProfile) {
  const auto config = llama7b_surrogate();
  EXPECT_TRUE(config.gated_mlp);
  EXPECT_FALSE(config.final_norm);
}

TEST(ModelConfig, WidthScalesConsistently) {
  const auto config = llama7b_surrogate(256);
  EXPECT_EQ(config.d_model, 256u);
  EXPECT_EQ(config.d_model % config.n_heads, 0u);
  EXPECT_GT(config.d_ff, config.d_model);
}

TEST(ModelConfig, HeadDimDivides) {
  for (const auto& config :
       {llama7b_surrogate(), opt2p7b_surrogate(), gpt2_1p5b_surrogate(),
        gpt2_355m_surrogate(), gpt2_117m_surrogate(), tiny_test_model()}) {
    EXPECT_EQ(config.d_model % config.n_heads, 0u) << config.name;
    EXPECT_EQ(config.d_head() * config.n_heads, config.d_model) << config.name;
  }
}

TEST(ModelConfig, RealDimsMatchPublishedArchitectures) {
  EXPECT_EQ(real_dims_llama7b().d_model, 4096u);
  EXPECT_EQ(real_dims_llama7b().norm_layers, 64u);
  EXPECT_EQ(real_dims_opt2p7b().d_model, 2560u);
  EXPECT_EQ(real_dims_opt2p7b().norm_layers, 65u);
  EXPECT_EQ(real_dims_gpt2_1p5b().d_model, 1600u);
  EXPECT_EQ(real_dims_gpt2_1p5b().norm_layers, 97u);
  EXPECT_EQ(real_dims_gpt2_355m().d_model, 1024u);
  EXPECT_EQ(real_dims_gpt2_117m().d_model, 768u);
}

TEST(ModelConfig, DistinctSeedsPerModel) {
  EXPECT_NE(llama7b_surrogate().seed, opt2p7b_surrogate().seed);
  EXPECT_NE(opt2p7b_surrogate().seed, gpt2_1p5b_surrogate().seed);
}

}  // namespace
}  // namespace haan::model
