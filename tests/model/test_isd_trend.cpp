// Integration test of the paper's §III-A claim on the surrogate models: the
// log-ISD of normalization-layer inputs decays with depth, dramatically in
// the early layers, and is strongly negatively linear over a deep-layer
// window — the property the whole HAAN algorithm rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "core/isd.hpp"
#include "core/calibration.hpp"
#include "model/transformer.hpp"

namespace haan::model {
namespace {

core::IsdTrace trace_for(const ModelConfig& config) {
  Transformer model(config);
  const auto corpus = core::random_token_corpus(config.vocab_size, 4, 16, 11);
  core::TraceCollectorOptions options;
  options.position_stride = 4;
  return core::collect_isd_trace(model, corpus, options);
}

class IsdTrendSweep : public ::testing::TestWithParam<const char*> {
 protected:
  ModelConfig config_for_name() const {
    const std::string name = GetParam();
    if (name == "OPT-2.7B") return opt2p7b_surrogate(64);
    if (name == "GPT2-1.5B") return gpt2_1p5b_surrogate(64);
    return llama7b_surrogate(64);
  }
};

TEST_P(IsdTrendSweep, IsdDecreasesOverall) {
  const auto trace = trace_for(config_for_name());
  const auto series = trace.mean_log_isd();
  // Early layers have clearly higher ISD than late layers.
  EXPECT_GT(series[1], series[series.size() - 2] + 0.5);
}

TEST_P(IsdTrendSweep, EarlyDecayIsSteepest) {
  const auto trace = trace_for(config_for_name());
  const auto series = trace.mean_log_isd();
  const std::size_t n = series.size();
  const double early_drop = series[0] - series[n / 4];
  const double late_drop = series[3 * n / 4] - series[n - 1];
  EXPECT_GT(early_drop, late_drop);
}

TEST_P(IsdTrendSweep, DeepWindowIsNegativelyLinear) {
  const auto trace = trace_for(config_for_name());
  const auto series = trace.mean_log_isd();
  const std::size_t n = series.size();
  // Last ~third of the network: strong negative Pearson (paper Fig 2).
  const std::span<const double> deep(series.data() + 2 * n / 3, n - 2 * n / 3);
  EXPECT_LT(common::pearson_vs_index(deep), -0.9);
}

TEST_P(IsdTrendSweep, DeepSlopeIsNegativeAndConsistentAcrossTokens) {
  const auto trace = trace_for(config_for_name());
  const std::size_t n = trace.layer_count();
  const std::size_t start = 2 * n / 3;
  // Per-observation slopes over the deep window all share the sign of the
  // mean slope — predictions anchored per token work for every token.
  for (std::size_t obs = 0; obs < trace.observation_count(); ++obs) {
    const auto series = trace.observation(obs);
    const std::span<const double> deep(series.data() + start, n - start);
    EXPECT_LT(common::fit_line_vs_index(deep).slope, 0.0) << "obs=" << obs;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, IsdTrendSweep,
                         ::testing::Values("LLaMA-7B", "OPT-2.7B", "GPT2-1.5B"));

}  // namespace
}  // namespace haan::model
