// RowPartitionPool: partition arithmetic (full coverage, no overlap, min-rows
// respected), parallel execution correctness across thread counts, inline
// degeneration for serial pools and small blocks, and the HAAN_NORM_THREADS
// environment override.
#include "model/row_partition.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

namespace haan::model {
namespace {

TEST(RowPartitionPool, ChunkBoundsCoverEveryRowExactlyOnce) {
  for (std::size_t rows : {1u, 2u, 7u, 16u, 61u, 128u, 1000u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 4u, 7u}) {
      if (chunks > rows) continue;
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [begin, count] = RowPartitionPool::chunk_bounds(rows, chunks, c);
        EXPECT_EQ(begin, expected_begin) << rows << "/" << chunks << "/" << c;
        EXPECT_GT(count, 0u);
        expected_begin = begin + count;
        covered += count;
      }
      EXPECT_EQ(covered, rows) << rows << "/" << chunks;
    }
  }
}

TEST(RowPartitionPool, PlanChunksRespectsMinRowsAndCap) {
  // 100 rows, min 30 per chunk -> at most 3 chunks even with 8 threads.
  EXPECT_EQ(RowPartitionPool::plan_chunks(100, 30, 8), 3u);
  // Cap binds before min-rows.
  EXPECT_EQ(RowPartitionPool::plan_chunks(1000, 10, 4), 4u);
  // Fewer rows than one chunk's minimum -> single inline chunk.
  EXPECT_EQ(RowPartitionPool::plan_chunks(5, 30, 8), 1u);
  EXPECT_EQ(RowPartitionPool::plan_chunks(100, 30, 1), 1u);
  EXPECT_EQ(RowPartitionPool::plan_chunks(0, 30, 4), 0u);
}

TEST(RowPartitionPool, ForRowsTouchesEveryRowOnceAcrossThreadCounts) {
  for (std::size_t threads : {1u, 2u, 3u, 5u}) {
    RowPartitionPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    const std::size_t rows = 97;  // prime
    std::vector<std::atomic<int>> touched(rows);
    pool.for_rows(rows, /*min_rows=*/1,
                  [&](std::size_t, std::size_t r0, std::size_t nr) {
      for (std::size_t r = r0; r < r0 + nr; ++r) touched[r].fetch_add(1);
    });
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(touched[r].load(), 1) << "threads=" << threads << " row " << r;
    }
  }
}

TEST(RowPartitionPool, ReusableAcrossManyDispatches) {
  RowPartitionPool pool(4);
  // Many generations through the same pool (the per-layer call pattern).
  std::atomic<std::size_t> total{0};
  for (int layer = 0; layer < 200; ++layer) {
    pool.for_rows(64, 1, [&](std::size_t, std::size_t, std::size_t nr) {
      total.fetch_add(nr);
    });
  }
  EXPECT_EQ(total.load(), 200u * 64u);
}

TEST(RowPartitionPool, SmallBlocksRunInlineAsOneChunk) {
  RowPartitionPool pool(4);
  std::size_t calls = 0;
  std::size_t chunk_seen = 99;
  // min_rows larger than the block -> exactly one inline chunk (chunk 0).
  pool.for_rows(8, /*min_rows=*/64, [&](std::size_t chunk, std::size_t r0,
                                        std::size_t nr) {
    ++calls;
    chunk_seen = chunk;
    EXPECT_EQ(r0, 0u);
    EXPECT_EQ(nr, 8u);
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(chunk_seen, 0u);
}

TEST(RowPartitionPool, ZeroRowsIsANoop) {
  RowPartitionPool pool(2);
  bool called = false;
  pool.for_rows(0, 1, [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(RowPartitionPool, DefaultThreadsHonorsEnvironment) {
  ::setenv("HAAN_NORM_THREADS", "3", 1);
  EXPECT_EQ(RowPartitionPool::default_threads(), 3u);
  ::setenv("HAAN_NORM_THREADS", "1", 1);
  EXPECT_EQ(RowPartitionPool::default_threads(), 1u);
  ::unsetenv("HAAN_NORM_THREADS");
  EXPECT_GE(RowPartitionPool::default_threads(), 1u);
  EXPECT_LE(RowPartitionPool::default_threads(), 4u);
}

TEST(RowPartitionPool, AffinityBaseParsesEnvironment) {
  ::setenv("HAAN_NORM_AFFINITY", "0", 1);
#ifdef __linux__
  EXPECT_EQ(RowPartitionPool::affinity_base(), 0);
  ::setenv("HAAN_NORM_AFFINITY", "2", 1);
  EXPECT_EQ(RowPartitionPool::affinity_base(), 2);
#else
  EXPECT_EQ(RowPartitionPool::affinity_base(), -1);
#endif
  ::setenv("HAAN_NORM_AFFINITY", "garbage", 1);
  EXPECT_EQ(RowPartitionPool::affinity_base(), -1);
  ::setenv("HAAN_NORM_AFFINITY", "-3", 1);
  EXPECT_EQ(RowPartitionPool::affinity_base(), -1);
  ::unsetenv("HAAN_NORM_AFFINITY");
  EXPECT_EQ(RowPartitionPool::affinity_base(), -1);
}

TEST(RowPartitionPool, PinnedWorkersProduceIdenticalResults) {
  // Pinning is a placement hint only: a pool built with affinity enabled must
  // partition and execute exactly like an unpinned one (and must not crash on
  // machines with fewer CPUs than workers — pins wrap modulo the online
  // count, and pin failures are logged and ignored).
  const std::size_t rows = 61;
  std::vector<int> unpinned(rows, 0);
  {
    RowPartitionPool pool(3);
    pool.for_rows(rows, 1, [&](std::size_t, std::size_t r0, std::size_t nr) {
      for (std::size_t r = r0; r < r0 + nr; ++r) unpinned[r] = static_cast<int>(r);
    });
  }

  ::setenv("HAAN_NORM_AFFINITY", "0", 1);
  std::vector<int> pinned(rows, -1);
  {
    RowPartitionPool pool(3);  // workers pin at spawn from the env
    pool.for_rows(rows, 1, [&](std::size_t, std::size_t r0, std::size_t nr) {
      for (std::size_t r = r0; r < r0 + nr; ++r) pinned[r] = static_cast<int>(r);
    });
  }
  ::unsetenv("HAAN_NORM_AFFINITY");
  EXPECT_EQ(pinned, unpinned);
}

TEST(RowPartitionPool, MinPartitionRowsScalesInverselyWithWidth) {
  EXPECT_EQ(min_partition_rows(8192), 1u);
  EXPECT_EQ(min_partition_rows(4096), 2u);
  EXPECT_EQ(min_partition_rows(32), 256u);
  EXPECT_GE(min_partition_rows(0), 1u);
}

}  // namespace
}  // namespace haan::model
