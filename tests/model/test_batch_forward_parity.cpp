// Mega-batch bit-identity across the whole execution path: a packed
// cross-request forward (forward_hidden_batch over a BatchLayout) must
// reproduce the per-request forward_hidden outputs bit for bit — for every
// factory provider AND the accelerator provider, over pre/post-norm,
// LayerNorm/RMSNorm, ragged packings (singleton, mixed lengths, prime
// Σ seq_len) and any RowPartitionPool thread count (serial, 2, 3) for both
// the provider-internal row partitioning and the forward's span pool.
//
// Why this holds: per-row arithmetic is position-independent except for the
// ISD predictor, which keys anchors by position — and the packed forward
// assigns every row a unique position (its packed row index), so each row
// predicts from exactly the anchor computed over its own data, as in the
// per-request run. All row kernels are row-wise, so partitioning cannot
// reorder any row's arithmetic.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/accel_norm_provider.hpp"
#include "core/provider_factory.hpp"
#include "model/transformer.hpp"

namespace haan::model {
namespace {

ModelConfig parity_model(NormPlacement placement, NormKind kind) {
  ModelConfig config;
  config.name = "megabatch-parity";
  config.n_blocks = 3;
  config.d_model = 61;  // prime
  config.n_heads = 1;
  config.d_ff = 64;
  config.vocab_size = 97;
  config.max_seq_len = 32;
  config.norm_kind = kind;
  config.placement = placement;
  config.final_norm = true;
  config.seed = 11;
  return config;
}

core::ProviderOptions provider_options(const ModelConfig& config,
                                       std::size_t norm_threads) {
  core::ProviderOptions options;
  options.width = config.d_model;
  options.model_name = config.name;
  options.norm_threads = norm_threads;
  // A plan covering anchor layer 1 and skipped layers 2..4 exercises the
  // predictor's record/predict paths through the packed seam.
  options.plan.enabled = true;
  options.plan.start = 1;
  options.plan.end = 4;
  options.plan.decay = -0.05;
  return options;
}

std::vector<std::vector<int>> make_sequences(const ModelConfig& config,
                                             const std::vector<std::size_t>& lens) {
  common::Rng rng(23);
  std::vector<std::vector<int>> sequences;
  for (const std::size_t len : lens) {
    std::vector<int> tokens(len);
    for (auto& t : tokens) {
      t = static_cast<int>(rng.uniform_index(config.vocab_size));
    }
    sequences.push_back(std::move(tokens));
  }
  return sequences;
}

std::vector<std::span<const int>> as_spans(
    const std::vector<std::vector<int>>& sequences) {
  std::vector<std::span<const int>> spans;
  spans.reserve(sequences.size());
  for (const auto& tokens : sequences) spans.emplace_back(tokens);
  return spans;
}

/// Compares the packed block's span rows against per-request references.
void expect_spans_match(const tensor::Tensor& packed, const BatchLayout& layout,
                        const std::vector<tensor::Tensor>& per_request,
                        std::size_t d, const std::string& label) {
  ASSERT_EQ(layout.sequences(), per_request.size()) << label;
  ASSERT_EQ(packed.shape().dim(0), layout.total_rows()) << label;
  for (std::size_t s = 0; s < per_request.size(); ++s) {
    const SequenceSpan& span = layout.span(s);
    const auto expected = per_request[s].data();
    ASSERT_EQ(expected.size(), span.rows * d) << label;
    const auto rows = packed.data().subspan(span.row_begin * d, span.rows * d);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(rows[i], expected[i])
          << label << " seq " << s << " element " << i;
    }
  }
}

// Ragged packings: singleton, mixed lengths with repeated length-1 prompts,
// and a prime Σ seq_len (5 + 1 + 7 = 13).
const std::vector<std::vector<std::size_t>> kPackings = {
    {7},
    {5, 1, 7},
    {4, 4, 4, 4},
    {1, 9, 1, 2},
};

TEST(MegaBatchParity, PackedForwardMatchesPerRequestForAllProviders) {
  for (const std::string& name : core::norm_provider_names()) {
    for (const NormPlacement placement :
         {NormPlacement::kPreNorm, NormPlacement::kPostNorm}) {
      for (const NormKind kind : {NormKind::kLayerNorm, NormKind::kRMSNorm}) {
        const ModelConfig config = parity_model(placement, kind);
        Transformer model(config);
        for (const auto& lens : kPackings) {
          const auto sequences = make_sequences(config, lens);
          const auto spans = as_spans(sequences);

          // Per-request reference: one provider, sequential forwards (the
          // run_reference execution model).
          const core::ProviderOptions ref_options = provider_options(config, 1);
          auto ref_provider = core::make_norm_provider(name, ref_options);
          ASSERT_NE(ref_provider, nullptr);
          std::vector<tensor::Tensor> per_request;
          for (const auto& tokens : sequences) {
            per_request.push_back(model.forward_hidden(tokens, *ref_provider));
          }

          const BatchLayout layout = BatchLayout::from_sequences(spans);
          for (const std::size_t threads : {1u, 2u, 3u}) {
            const std::string label = name + " " +
                                      (placement == NormPlacement::kPreNorm
                                           ? "pre-" : "post-") +
                                      (kind == NormKind::kLayerNorm ? "ln" : "rms") +
                                      " pack=" + std::to_string(lens.size()) +
                                      " threads=" + std::to_string(threads);
            auto packed_provider = core::make_norm_provider(
                name, provider_options(config, threads));
            RowPartitionPool span_pool(threads);
            const tensor::Tensor packed = model.forward_hidden_batch(
                spans, layout, *packed_provider, &span_pool);
            expect_spans_match(packed, layout, per_request, config.d_model, label);
          }
        }
      }
    }
  }
}

TEST(MegaBatchParity, HaanCountersIdenticalToPerRequestAggregate) {
  const ModelConfig config = parity_model(NormPlacement::kPreNorm,
                                          NormKind::kLayerNorm);
  Transformer model(config);
  const auto sequences = make_sequences(config, {5, 1, 7});
  const auto spans = as_spans(sequences);

  auto ref = core::make_norm_provider("haan", provider_options(config, 1));
  for (const auto& tokens : sequences) model.forward_hidden(tokens, *ref);
  const auto* ref_haan = core::as_haan_provider(ref.get());
  ASSERT_NE(ref_haan, nullptr);

  auto packed = core::make_norm_provider("haan", provider_options(config, 3));
  const BatchLayout layout = BatchLayout::from_sequences(spans);
  model.forward_hidden_batch(spans, layout, *packed);
  const auto* packed_haan = core::as_haan_provider(packed.get());
  ASSERT_NE(packed_haan, nullptr);

  // Per-row counters aggregate identically; the batching-shape counters show
  // the packed run amortized every layer into ONE call over Σ seq_len rows.
  EXPECT_EQ(packed_haan->counters().norm_calls, ref_haan->counters().norm_calls);
  EXPECT_EQ(packed_haan->counters().isd_computed,
            ref_haan->counters().isd_computed);
  EXPECT_EQ(packed_haan->counters().isd_predicted,
            ref_haan->counters().isd_predicted);
  EXPECT_EQ(packed_haan->counters().elements_read,
            ref_haan->counters().elements_read);
  EXPECT_EQ(packed_haan->counters().fused_residual_norms,
            ref_haan->counters().fused_residual_norms);
  EXPECT_EQ(packed_haan->counters().batched_norm_calls,
            config.norm_layer_count());
  EXPECT_EQ(packed_haan->counters().batched_rows,
            config.norm_layer_count() * layout.total_rows());
  EXPECT_EQ(ref_haan->counters().batched_norm_calls,
            config.norm_layer_count() * sequences.size());
}

TEST(MegaBatchParity, AcceleratorProviderPackedMatchesPerRequest) {
  const ModelConfig config = parity_model(NormPlacement::kPreNorm,
                                          NormKind::kRMSNorm);
  Transformer model(config);
  const auto sequences = make_sequences(config, {5, 1, 7});
  const auto spans = as_spans(sequences);

  core::HaanConfig algorithm;
  algorithm.plan.enabled = true;
  algorithm.plan.start = 1;
  algorithm.plan.end = 4;
  algorithm.plan.decay = -0.05;

  accel::AcceleratorNormProvider ref(accel::haan_v1(), algorithm);
  std::vector<tensor::Tensor> per_request;
  for (const auto& tokens : sequences) {
    per_request.push_back(model.forward_hidden(tokens, ref));
  }

  accel::AcceleratorNormProvider packed(accel::haan_v1(), algorithm);
  const BatchLayout layout = BatchLayout::from_sequences(spans);
  const tensor::Tensor out = model.forward_hidden_batch(spans, layout, packed);
  expect_spans_match(out, layout, per_request, config.d_model, "accel");

  // Identical per-vector work, batched burst pricing: same norm_calls and
  // skip split, strictly fewer cycles (pipeline fill and DMA burst paid once
  // per layer instead of once per row).
  EXPECT_EQ(packed.cost().norm_calls, ref.cost().norm_calls);
  EXPECT_EQ(packed.cost().skipped, ref.cost().skipped);
  EXPECT_EQ(packed.cost().batched_layers, config.norm_layer_count());
  EXPECT_EQ(packed.cost().batched_rows,
            config.norm_layer_count() * layout.total_rows());
  EXPECT_LT(packed.cost().cycles, ref.cost().cycles);
}

TEST(MegaBatchParity, ObserverSeesEveryPackedRowBitIdentically) {
  const ModelConfig config = parity_model(NormPlacement::kPreNorm,
                                          NormKind::kLayerNorm);
  Transformer model(config);
  const auto sequences = make_sequences(config, {5, 1, 7});
  const auto spans = as_spans(sequences);
  const BatchLayout layout = BatchLayout::from_sequences(spans);

  struct Observation {
    std::size_t layer;
    std::size_t position;
    std::vector<float> z;
  };

  // Per-request observations keyed by (layer, packed row index) via the
  // layout, matching the packed forward's observer positions.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<float>> expected;
  {
    auto provider = core::make_norm_provider("haan", provider_options(config, 1));
    for (std::size_t s = 0; s < sequences.size(); ++s) {
      const std::size_t row_begin = layout.span(s).row_begin;
      model.set_norm_observer([&, row_begin](std::size_t layer, std::size_t pos,
                                             std::span<const float> z) {
        expected[{layer, row_begin + pos}] = {z.begin(), z.end()};
      });
      model.forward_hidden(sequences[s], *provider);
    }
  }

  std::vector<Observation> packed_observed;
  model.set_norm_observer([&](std::size_t layer, std::size_t pos,
                              std::span<const float> z) {
    packed_observed.push_back({layer, pos, {z.begin(), z.end()}});
  });
  auto provider = core::make_norm_provider("haan", provider_options(config, 2));
  model.forward_hidden_batch(spans, layout, *provider);
  model.set_norm_observer({});

  ASSERT_EQ(packed_observed.size(), expected.size());
  for (const auto& obs : packed_observed) {
    const auto it = expected.find({obs.layer, obs.position});
    ASSERT_NE(it, expected.end())
        << "layer " << obs.layer << " row " << obs.position;
    ASSERT_EQ(obs.z.size(), it->second.size());
    for (std::size_t i = 0; i < obs.z.size(); ++i) {
      ASSERT_EQ(obs.z[i], it->second[i])
          << "layer " << obs.layer << " row " << obs.position << " i=" << i;
    }
  }
}

TEST(MegaBatchParity, LayoutValidatesPacking) {
  BatchLayout layout = BatchLayout::from_lengths(std::vector<std::size_t>{3, 4});
  EXPECT_EQ(layout.total_rows(), 7u);
  EXPECT_EQ(layout.sequences(), 2u);
  EXPECT_EQ(layout.span(1).row_begin, 3u);
  EXPECT_EQ(layout.span(1).rows, 4u);
  EXPECT_EQ(layout.span(1).start_position, 0u);
  EXPECT_DEATH(BatchLayout::from_lengths(std::vector<std::size_t>{3, 0}), "");
}

}  // namespace
}  // namespace haan::model
