// BatchLayout construction: from_lengths / from_sequences (position-0 packs),
// the from_spans chunked entry point (per-span start positions), the single()
// degenerate, and validation deaths for mismatched or empty inputs.
#include <gtest/gtest.h>

#include <vector>

#include "model/batch_layout.hpp"

namespace haan::model {
namespace {

TEST(BatchLayout, FromLengthsPacksBackToBackAtPositionZero) {
  const BatchLayout layout =
      BatchLayout::from_lengths(std::vector<std::size_t>{3, 1, 5});
  EXPECT_EQ(layout.sequences(), 3u);
  EXPECT_EQ(layout.total_rows(), 9u);
  EXPECT_EQ(layout.span(0).row_begin, 0u);
  EXPECT_EQ(layout.span(1).row_begin, 3u);
  EXPECT_EQ(layout.span(2).row_begin, 4u);
  for (const SequenceSpan& span : layout.spans()) {
    EXPECT_EQ(span.start_position, 0u);
  }
}

TEST(BatchLayout, FromSpansCarriesNonzeroStartPositions) {
  // A serve-style mixed pack: a mid-prompt prefill chunk (4 rows continuing
  // at position 6), a decode step (1 row at position 11) and a fresh whole
  // prompt (3 rows at 0).
  const std::vector<std::size_t> lengths = {4, 1, 3};
  const std::vector<std::size_t> starts = {6, 11, 0};
  const BatchLayout layout = BatchLayout::from_spans(lengths, starts);
  EXPECT_EQ(layout.sequences(), 3u);
  EXPECT_EQ(layout.total_rows(), 8u);
  EXPECT_EQ(layout.span(0).row_begin, 0u);
  EXPECT_EQ(layout.span(0).rows, 4u);
  EXPECT_EQ(layout.span(0).start_position, 6u);
  EXPECT_EQ(layout.span(1).row_begin, 4u);
  EXPECT_EQ(layout.span(1).start_position, 11u);
  EXPECT_EQ(layout.span(2).row_begin, 5u);
  EXPECT_EQ(layout.span(2).start_position, 0u);
}

TEST(BatchLayout, SingleSupportsOffsetContinuation) {
  const BatchLayout fresh = BatchLayout::single(7);
  EXPECT_EQ(fresh.sequences(), 1u);
  EXPECT_EQ(fresh.total_rows(), 7u);
  EXPECT_EQ(fresh.span(0).start_position, 0u);

  const BatchLayout resumed = BatchLayout::single(2, /*start_position=*/9);
  EXPECT_EQ(resumed.total_rows(), 2u);
  EXPECT_EQ(resumed.span(0).start_position, 9u);
}

TEST(BatchLayout, FromSpansValidatesInputs) {
  const std::vector<std::size_t> lengths = {4, 1};
  const std::vector<std::size_t> starts_short = {6};
  EXPECT_DEATH(BatchLayout::from_spans(lengths, starts_short), "");
  const std::vector<std::size_t> zero_len = {4, 0};
  const std::vector<std::size_t> starts = {6, 11};
  EXPECT_DEATH(BatchLayout::from_spans(zero_len, starts), "");
}

}  // namespace
}  // namespace haan::model
