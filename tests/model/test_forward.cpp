#include <gtest/gtest.h>

#include <cmath>

#include "model/attention.hpp"
#include "model/transformer.hpp"
#include "tensor/norm_ref.hpp"
#include "tensor/ops.hpp"

namespace haan::model {
namespace {

std::vector<int> test_tokens(const ModelConfig& config, std::size_t n,
                             std::uint64_t seed = 5) {
  common::Rng rng(seed);
  std::vector<int> tokens(n);
  for (auto& t : tokens) t = static_cast<int>(rng.uniform_index(config.vocab_size));
  return tokens;
}

TEST(Weights, DeterministicFromSeed) {
  const auto config = tiny_test_model();
  const ModelWeights a = make_weights(config);
  const ModelWeights b = make_weights(config);
  EXPECT_EQ(a.embedding.data()[0], b.embedding.data()[0]);
  EXPECT_EQ(a.blocks[0].wq.data()[10], b.blocks[0].wq.data()[10]);
  EXPECT_EQ(a.blocks[2].norm1_alpha[3], b.blocks[2].norm1_alpha[3]);
}

TEST(Weights, ShapesMatchConfig) {
  const auto config = tiny_test_model();
  const ModelWeights w = make_weights(config);
  EXPECT_EQ(w.blocks.size(), config.n_blocks);
  EXPECT_EQ(w.embedding.shape(), tensor::Shape({config.vocab_size, config.d_model}));
  EXPECT_EQ(w.blocks[0].wq.shape(), tensor::Shape({config.d_model, config.d_model}));
  EXPECT_EQ(w.blocks[0].w_up.shape(), tensor::Shape({config.d_ff, config.d_model}));
  EXPECT_EQ(w.blocks[0].norm1_alpha.size(), config.d_model);
  EXPECT_FALSE(w.final_alpha.empty());  // tiny model has a final norm
}

TEST(Weights, GatedModelsHaveGateMatrix) {
  const auto llama = llama7b_surrogate(64);
  const ModelWeights w = make_weights(llama);
  EXPECT_EQ(w.blocks[0].w_gate.shape(), tensor::Shape({llama.d_ff, llama.d_model}));
  // RMSNorm models carry no beta.
  EXPECT_TRUE(w.blocks[0].norm1_beta.empty());
}

TEST(Weights, AlphaGainsGrowWithDepth) {
  // The variance schedule makes later-block norm gains larger — the
  // mechanism behind the emergent ISD decay.
  const auto config = llama7b_surrogate(64);
  const ModelWeights w = make_weights(config);
  const auto rms = [](const std::vector<float>& v) {
    double acc = 0.0;
    for (const float x : v) acc += static_cast<double>(x) * x;
    return std::sqrt(acc / static_cast<double>(v.size()));
  };
  EXPECT_GT(rms(w.blocks.back().norm1_alpha), rms(w.blocks.front().norm1_alpha));
}

TEST(Attention, OutputShapeMatches) {
  const auto config = tiny_test_model();
  const ModelWeights w = make_weights(config);
  common::Rng rng(1);
  const tensor::Tensor x = tensor::Tensor::randn(
      tensor::Shape{8, config.d_model}, rng);
  const tensor::Tensor out = multi_head_attention(x, w.blocks[0], config.n_heads);
  EXPECT_EQ(out.shape(), x.shape());
}

TEST(Attention, CausalityFirstTokenUnaffectedByLater) {
  // Changing later tokens must not change the first row's output.
  const auto config = tiny_test_model();
  const ModelWeights w = make_weights(config);
  common::Rng rng(2);
  tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{4, config.d_model}, rng);
  const tensor::Tensor out1 = multi_head_attention(x, w.blocks[0], config.n_heads);
  for (std::size_t c = 0; c < config.d_model; ++c) x.at(3, c) += 10.0f;
  const tensor::Tensor out2 = multi_head_attention(x, w.blocks[0], config.n_heads);
  for (std::size_t c = 0; c < config.d_model; ++c) {
    EXPECT_FLOAT_EQ(out1.at(0, c), out2.at(0, c));
  }
}

TEST(Transformer, ForwardShapesAndDeterminism) {
  Transformer model(tiny_test_model());
  ExactNormProvider exact;
  const auto tokens = test_tokens(model.config(), 6);
  const tensor::Tensor h1 = model.forward_hidden(tokens, exact);
  const tensor::Tensor h2 = model.forward_hidden(tokens, exact);
  EXPECT_EQ(h1.shape(), tensor::Shape({6, model.config().d_model}));
  EXPECT_EQ(h1.data()[17], h2.data()[17]);
}

TEST(Transformer, CausalAcrossWholeStack) {
  Transformer model(tiny_test_model());
  ExactNormProvider exact;
  auto tokens = test_tokens(model.config(), 5);
  const tensor::Tensor h1 = model.forward_hidden(tokens, exact);
  tokens.back() = (tokens.back() + 1) % static_cast<int>(model.config().vocab_size);
  const tensor::Tensor h2 = model.forward_hidden(tokens, exact);
  // Positions before the changed token are bit-identical.
  for (std::size_t p = 0; p + 1 < 5; ++p) {
    for (std::size_t c = 0; c < model.config().d_model; ++c) {
      EXPECT_EQ(h1.at(p, c), h2.at(p, c)) << "p=" << p;
    }
  }
}

TEST(Transformer, ObserverSeesEveryNormLayerAndPosition) {
  Transformer model(tiny_test_model());
  ExactNormProvider exact;
  const std::size_t seq = 3;
  std::vector<std::size_t> per_layer(model.config().norm_layer_count(), 0);
  model.set_norm_observer(
      [&](std::size_t layer, std::size_t pos, std::span<const float> z) {
        ASSERT_LT(layer, per_layer.size());
        EXPECT_LT(pos, seq);
        EXPECT_EQ(z.size(), model.config().d_model);
        ++per_layer[layer];
      });
  model.forward_hidden(test_tokens(model.config(), seq), exact);
  for (const std::size_t count : per_layer) EXPECT_EQ(count, seq);
}

TEST(Transformer, PooledFeatureIsMeanOfFinalHidden) {
  Transformer model(tiny_test_model());
  ExactNormProvider exact;
  const auto tokens = test_tokens(model.config(), 4);
  const tensor::Tensor h = model.forward_hidden(tokens, exact);
  const auto pooled = model.pooled_features(tokens, exact);
  const auto mean = tensor::mean_rows(h);
  for (std::size_t c = 0; c < pooled.size(); ++c) EXPECT_FLOAT_EQ(pooled[c], mean[c]);
}

TEST(Transformer, LogitsShapeAndFiniteness) {
  Transformer model(tiny_test_model());
  ExactNormProvider exact;
  const auto logits = model.last_logits(test_tokens(model.config(), 4), exact);
  EXPECT_EQ(logits.size(), model.config().vocab_size);
  for (const float v : logits) EXPECT_TRUE(std::isfinite(v));
}

TEST(Transformer, PostNormVariantRuns) {
  auto config = tiny_test_model();
  config.placement = NormPlacement::kPostNorm;
  Transformer model(config);
  ExactNormProvider exact;
  const tensor::Tensor h = model.forward_hidden(test_tokens(config, 4), exact);
  for (const float v : h.data()) EXPECT_TRUE(std::isfinite(v));
  // Post-norm output has been normalized: per-row variance ~ alpha^2 scale.
  const auto stats = tensor::exact_stats(h.row(0));
  EXPECT_LT(std::abs(stats.mean), 2.0);
}

}  // namespace
}  // namespace haan::model
