#include "eval/evaluator.hpp"

#include <gtest/gtest.h>

#include "core/haan_norm.hpp"

namespace haan::eval {
namespace {

model::Transformer& tiny_model() {
  static model::Transformer model(model::tiny_test_model());
  return model;
}

TaskDataset& dataset() {
  static TaskDataset ds = [] {
    auto spec = task_suite_for("LLaMA-7B")[0];
    spec.context_len = 6;
    return TaskDataset::generate(tiny_model(), spec, 48);
  }();
  return ds;
}

TEST(Evaluator, ExactProviderMatchesBaselineExactly) {
  // Evaluating with exact normalization reproduces the stored generator
  // decisions bit for bit: zero flips.
  model::ExactNormProvider exact;
  const AccuracyResult result = evaluate_accuracy(tiny_model(), exact, dataset());
  const AccuracyResult baseline = evaluate_baseline(dataset());
  EXPECT_EQ(result.flips_vs_baseline, 0u);
  EXPECT_EQ(result.correct, baseline.correct);
  EXPECT_DOUBLE_EQ(result.accuracy, baseline.accuracy);
}

TEST(Evaluator, ParallelMatchesSerial) {
  model::ExactNormProvider exact;
  const AccuracyResult serial = evaluate_accuracy(tiny_model(), exact, dataset());
  const AccuracyResult parallel = evaluate_accuracy_parallel(
      tiny_model(), [] { return std::make_unique<model::ExactNormProvider>(); },
      dataset(), 4);
  EXPECT_EQ(parallel.correct, serial.correct);
  EXPECT_EQ(parallel.flips_vs_baseline, serial.flips_vs_baseline);
  EXPECT_EQ(parallel.n_examples, serial.n_examples);
}

TEST(Evaluator, ParallelThreadCountIrrelevant) {
  const auto factory = [] { return std::make_unique<model::ExactNormProvider>(); };
  const AccuracyResult one = evaluate_accuracy_parallel(tiny_model(), factory,
                                                        dataset(), 1);
  const AccuracyResult many = evaluate_accuracy_parallel(tiny_model(), factory,
                                                         dataset(), 16);
  EXPECT_EQ(one.correct, many.correct);
}

TEST(Evaluator, GoodHaanConfigCausesFewFlips) {
  core::HaanConfig config;
  config.nsub = tiny_model().config().d_model / 2;
  const AccuracyResult result = evaluate_accuracy_parallel(
      tiny_model(),
      [&] { return std::make_unique<core::HaanNormProvider>(config); }, dataset(),
      4);
  // Subsampled stats + fast invsqrt: decision churn stays in single digits.
  EXPECT_LE(result.flips_vs_baseline, dataset().examples().size() / 8);
}

TEST(Evaluator, GarbageNormalizationCollapsesToChance) {
  // A provider that scales by a huge constant destroys the features: accuracy
  // falls toward 1/n_choices.
  class BrokenNorm final : public model::NormProvider {
   public:
    void normalize(std::size_t layer, std::size_t, model::NormKind,
                   std::span<const float> z, std::span<const float>,
                   std::span<const float>, std::span<float> out) override {
      for (std::size_t i = 0; i < z.size(); ++i) {
        // Early layers amplified, later damped: feature directions scrambled.
        out[i] = (layer % 2 == 0) ? z[i] * 37.0f : z[i] * 0.01f;
      }
    }
  };
  BrokenNorm broken;
  const AccuracyResult result = evaluate_accuracy(tiny_model(), broken, dataset());
  EXPECT_LT(result.accuracy, 0.68);  // far from the ~0.70 calibrated baseline
  EXPECT_GT(result.flips_vs_baseline, dataset().examples().size() / 4);
}

TEST(Evaluator, CountsAreConsistent) {
  model::ExactNormProvider exact;
  const AccuracyResult result = evaluate_accuracy(tiny_model(), exact, dataset());
  EXPECT_EQ(result.n_examples, dataset().examples().size());
  EXPECT_LE(result.correct, result.n_examples);
  EXPECT_DOUBLE_EQ(result.accuracy, static_cast<double>(result.correct) /
                                        static_cast<double>(result.n_examples));
}

}  // namespace
}  // namespace haan::eval
