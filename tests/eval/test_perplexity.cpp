#include "eval/perplexity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "core/haan_norm.hpp"

namespace haan::eval {
namespace {

TEST(SoftmaxKl, IdenticalDistributionsZero) {
  const std::vector<float> logits{1.0f, 2.0f, 3.0f};
  EXPECT_NEAR(softmax_kl(logits, logits), 0.0, 1e-12);
}

TEST(SoftmaxKl, NonNegativeAndAsymmetric) {
  const std::vector<float> p{3.0f, 1.0f, 0.0f};
  const std::vector<float> q{0.0f, 1.0f, 3.0f};
  EXPECT_GT(softmax_kl(p, q), 0.0);
}

TEST(SoftmaxKl, ScaleInvariantThroughStandardization) {
  // Standardization makes the metric invariant to logit scaling — the
  // property that keeps untrained-readout KL meaningful.
  const std::vector<float> p{1.0f, 2.0f, 4.0f, 0.5f};
  std::vector<float> p_scaled(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) p_scaled[i] = 100.0f * p[i];
  EXPECT_NEAR(softmax_kl(p, p_scaled), 0.0, 1e-9);
}

TEST(PseudoPpl, ExactVariantIsUnity) {
  model::Transformer model(model::tiny_test_model());
  const auto corpus =
      core::random_token_corpus(model.config().vocab_size, 3, 8, 17);
  model::ExactNormProvider exact;
  EXPECT_NEAR(pseudo_ppl_ratio(model, exact, corpus), 1.0, 1e-9);
}

TEST(PseudoPpl, GoodHaanConfigNearUnity) {
  model::Transformer model(model::tiny_test_model());
  const auto corpus =
      core::random_token_corpus(model.config().vocab_size, 3, 8, 18);
  core::HaanConfig config;  // fast invsqrt only
  core::HaanNormProvider provider(config);
  const double ratio = pseudo_ppl_ratio(model, provider, corpus);
  EXPECT_GE(ratio, 1.0 - 1e-9);
  EXPECT_LT(ratio, 1.1);
}

TEST(PseudoPpl, HarsherApproximationRaisesRatio) {
  model::Transformer model(model::tiny_test_model());
  const auto corpus =
      core::random_token_corpus(model.config().vocab_size, 3, 8, 19);
  core::HaanConfig gentle;  // full stats
  core::HaanConfig harsh;
  harsh.nsub = 4;  // 4-of-32 prefix: very noisy ISD
  core::HaanNormProvider p_gentle(gentle), p_harsh(harsh);
  const double r_gentle = pseudo_ppl_ratio(model, p_gentle, corpus);
  const double r_harsh = pseudo_ppl_ratio(model, p_harsh, corpus);
  EXPECT_GT(r_harsh, r_gentle);
}

}  // namespace
}  // namespace haan::eval
