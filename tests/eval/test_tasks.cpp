#include "eval/tasks.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"

namespace haan::eval {
namespace {

model::Transformer& tiny_model() {
  static model::Transformer model(model::tiny_test_model());
  return model;
}

TEST(TaskSuite, FiveTasksPerModel) {
  for (const char* name : {"LLaMA-7B", "OPT-2.7B", "GPT2-1.5B"}) {
    const auto suite = task_suite_for(name);
    ASSERT_EQ(suite.size(), 5u) << name;
    EXPECT_EQ(suite[0].short_name, "WG");
    EXPECT_EQ(suite[0].n_choices, 2u);
    EXPECT_EQ(suite[2].short_name, "HS");
    EXPECT_EQ(suite[2].n_choices, 4u);
    EXPECT_EQ(suite[4].short_name, "A-c");
  }
}

TEST(TaskSuite, TargetsMatchPaperTableI) {
  const auto llama = task_suite_for("LLaMA-7B");
  EXPECT_DOUBLE_EQ(llama[0].target_accuracy, 0.7017);  // WG
  EXPECT_DOUBLE_EQ(llama[1].target_accuracy, 0.7867);  // PQ
  const auto gpt2 = task_suite_for("GPT2-1.5B");
  EXPECT_DOUBLE_EQ(gpt2[4].target_accuracy, 0.2500);  // A-c at chance
}

TEST(TaskDataset, GenerationIsDeterministic) {
  auto spec = task_suite_for("LLaMA-7B")[0];
  spec.context_len = 6;
  const auto a = TaskDataset::generate(tiny_model(), spec, 16, 2);
  const auto b = TaskDataset::generate(tiny_model(), spec, 16, 4);
  ASSERT_EQ(a.examples().size(), b.examples().size());
  for (std::size_t e = 0; e < a.examples().size(); ++e) {
    EXPECT_EQ(a.examples()[e].tokens, b.examples()[e].tokens);
    EXPECT_EQ(a.examples()[e].gold, b.examples()[e].gold);
    EXPECT_EQ(a.examples()[e].choice_embeddings[0],
              b.examples()[e].choice_embeddings[0]);
  }
  EXPECT_DOUBLE_EQ(a.calibrated_difficulty(), b.calibrated_difficulty());
}

TEST(TaskDataset, BaselineAccuracyNearTarget) {
  auto spec = task_suite_for("LLaMA-7B")[0];  // WG target 0.7017
  spec.context_len = 6;
  const auto dataset = TaskDataset::generate(tiny_model(), spec, 200);
  // Cross-noise makes the realized accuracy deviate slightly from the
  // z-draw calibration; it must stay within a few points.
  EXPECT_NEAR(dataset.baseline_accuracy(), spec.target_accuracy, 0.06);
}

TEST(TaskDataset, ChanceTargetIsCalibratable) {
  auto spec = task_suite_for("GPT2-1.5B")[4];  // A-c at 0.25 = chance
  spec.context_len = 6;
  const auto dataset = TaskDataset::generate(tiny_model(), spec, 200);
  EXPECT_NEAR(dataset.baseline_accuracy(), 0.25, 0.08);
}

TEST(TaskDataset, EmbeddingsAreUnitNorm) {
  auto spec = task_suite_for("OPT-2.7B")[2];  // HS, 4 choices
  spec.context_len = 6;
  const auto dataset = TaskDataset::generate(tiny_model(), spec, 8);
  for (const auto& example : dataset.examples()) {
    ASSERT_EQ(example.choice_embeddings.size(), 4u);
    EXPECT_LT(example.gold, 4u);
    for (const auto& emb : example.choice_embeddings) {
      EXPECT_NEAR(tensor::l2_norm(emb), 1.0, 1e-5);
    }
  }
}

TEST(TaskDataset, GeneratorFeaturesAreUnitNorm) {
  auto spec = task_suite_for("LLaMA-7B")[1];
  spec.context_len = 6;
  const auto dataset = TaskDataset::generate(tiny_model(), spec, 8);
  for (const auto& feature : dataset.generator_features()) {
    EXPECT_NEAR(tensor::l2_norm(feature), 1.0, 1e-5);
  }
}

TEST(TaskDataset, GoldAlignedAboveDistractorsOnAverage) {
  auto spec = task_suite_for("LLaMA-7B")[0];
  spec.context_len = 6;
  const auto dataset = TaskDataset::generate(tiny_model(), spec, 64);
  double gold_sum = 0.0, other_sum = 0.0;
  std::size_t other_count = 0;
  for (std::size_t e = 0; e < dataset.examples().size(); ++e) {
    const auto& example = dataset.examples()[e];
    const auto& feature = dataset.generator_features()[e];
    for (std::size_t c = 0; c < example.choice_embeddings.size(); ++c) {
      const double score = tensor::dot(example.choice_embeddings[c], feature);
      if (c == example.gold) {
        gold_sum += score;
      } else {
        other_sum += score;
        ++other_count;
      }
    }
  }
  EXPECT_GT(gold_sum / static_cast<double>(dataset.examples().size()),
            other_sum / static_cast<double>(other_count));
}

TEST(ScoreExample, PicksHighestCosine) {
  Example example;
  example.gold = 1;
  example.choice_embeddings = {{1.0f, 0.0f}, {0.0f, 1.0f}};
  const std::vector<float> feature{0.1f, 0.9f};
  EXPECT_EQ(score_example(example, feature), 1u);
  const std::vector<float> feature2{0.9f, 0.1f};
  EXPECT_EQ(score_example(example, feature2), 0u);
}

class TaskTargetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TaskTargetSweep, CalibrationHitsEachTaskTarget) {
  auto spec = task_suite_for("LLaMA-7B")[GetParam()];
  spec.context_len = 6;
  const auto dataset = TaskDataset::generate(tiny_model(), spec, 150);
  EXPECT_NEAR(dataset.baseline_accuracy(), spec.target_accuracy, 0.09)
      << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllFiveTasks, TaskTargetSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

}  // namespace
}  // namespace haan::eval
