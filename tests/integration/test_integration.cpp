// End-to-end integration: calibrate a skip plan on a surrogate model, run the
// HAAN normalizer through the full transformer, execute the same layers on
// the accelerator model, and verify the whole-chain properties the paper
// claims — computed-vs-predicted ISD counts, accuracy preservation, and
// latency/energy ordering.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/accelerator.hpp"
#include "baselines/haan_engine.hpp"
#include "core/calibration.hpp"
#include "core/haan_norm.hpp"
#include "eval/evaluator.hpp"
#include "model/transformer.hpp"
#include "tensor/ops.hpp"

namespace haan {
namespace {

struct Pipeline {
  model::ModelConfig config = model::llama7b_surrogate(64);
  model::Transformer model{config};
  core::CalibrationResult calibration = [&] {
    core::CalibrationOptions options;
    options.n_samples = 4;
    options.seq_len = 12;
    options.position_stride = 4;
    options.planner.min_gap = 8;
    return core::calibrate_skip_plan(model, options);
  }();
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

TEST(Integration, CalibratedPlanSkipsDeepLayers) {
  const auto& plan = pipeline().calibration.plan;
  EXPECT_TRUE(plan.enabled);
  EXPECT_GT(plan.skipped_count(), 4u);
  EXPECT_LT(plan.decay, 0.0);
  EXPECT_LT(plan.pearson, -0.9);
}

TEST(Integration, SkipCountsMatchPlanExactly) {
  auto& p = pipeline();
  core::HaanConfig config;
  config.plan = p.calibration.plan;
  core::HaanNormProvider provider(config);
  const auto corpus = core::random_token_corpus(p.config.vocab_size, 1, 8, 3);
  p.model.forward_hidden(corpus[0], provider);

  const std::size_t layers = p.config.norm_layer_count();
  const std::size_t seq = corpus[0].size();
  EXPECT_EQ(provider.counters().norm_calls, layers * seq);
  EXPECT_EQ(provider.counters().isd_predicted,
            p.calibration.plan.skipped_count() * seq);
  EXPECT_EQ(provider.counters().isd_computed,
            (layers - p.calibration.plan.skipped_count()) * seq);
}

TEST(Integration, PredictedIsdTracksExactWithinWindow) {
  // Run the model with HAAN, collect the predicted ISDs; then compare to the
  // exact ISDs of the same inputs: within the skip window the relative error
  // stays modest (the log-linear fit is good there).
  auto& p = pipeline();
  const auto& plan = p.calibration.plan;
  core::HaanConfig config;
  config.plan = plan;
  config.use_fast_invsqrt = false;
  core::HaanNormProvider provider(config);

  std::vector<double> rel_errors;
  p.model.set_norm_observer(
      [&](std::size_t layer, std::size_t pos, std::span<const float> z) {
        if (!plan.skips(layer) || pos != 0) return;
        // The provider normalizes right after this callback; query afterwards
        // is racy, so recompute the prediction from exact anchor semantics:
        // compare exact ISD to what a log-linear extrapolation from the
        // anchor would give — the provider's own value is checked in
        // test_haan_norm; here we check the *model-level* predictability.
        const double exact = core::exact_isd(z, p.config.norm_kind);
        rel_errors.push_back(exact);
      });
  const auto corpus = core::random_token_corpus(p.config.vocab_size, 1, 6, 5);
  p.model.forward_hidden(corpus[0], provider);
  p.model.set_norm_observer({});
  ASSERT_GE(rel_errors.size(), plan.skipped_count());
  // Exact ISDs across the skip window decay smoothly: the ratio between
  // consecutive skipped layers stays within a tight band around exp(decay).
  for (std::size_t i = 1; i < plan.skipped_count(); ++i) {
    const double ratio = rel_errors[i] / rel_errors[i - 1];
    EXPECT_NEAR(std::log(ratio), plan.decay, 0.15) << "i=" << i;
  }
}

TEST(Integration, SkipOnlyConfigPreservesFeatureDirection) {
  // The core contribution in isolation (ISD skipping, no subsampling or
  // quantization) must barely perturb the pooled features: the predictor's
  // log-linear extrapolation is accurate inside the calibrated window.
  auto& p = pipeline();
  core::HaanConfig config;
  config.plan = p.calibration.plan;
  config.use_fast_invsqrt = false;
  core::HaanNormProvider haan(config);
  model::ExactNormProvider exact;

  const auto corpus = core::random_token_corpus(p.config.vocab_size, 1, 8, 7);
  const auto f_exact = p.model.pooled_features(corpus[0], exact);
  const auto f_haan = p.model.pooled_features(corpus[0], haan);
  const double cosine =
      tensor::dot(f_exact, f_haan) /
      (tensor::l2_norm(f_exact) * tensor::l2_norm(f_haan));
  EXPECT_GT(cosine, 0.8);
}

TEST(Integration, FullConfigPreservesDecisionsNotDirections) {
  // With subsampling + INT8 stacked on top, the pooled feature rotates
  // substantially — but decisions survive because gold/distractor margins
  // scale together under a global rotation (choice noise components are
  // near-orthogonal to the rotated feature). This is exactly why the paper's
  // Table I shows <1% accuracy deltas despite 4-6% per-layer ISD noise.
  auto& p = pipeline();
  auto spec = eval::task_suite_for("LLaMA-7B")[0];  // WinoGrande
  spec.context_len = 8;
  const auto dataset = eval::TaskDataset::generate(p.model, spec, 96);

  core::HaanConfig config = core::llama7b_algorithm_config(p.config.d_model);
  config.plan = p.calibration.plan;
  const auto result = eval::evaluate_accuracy_parallel(
      p.model, [&] { return std::make_unique<core::HaanNormProvider>(config); },
      dataset, 8);
  // Decision churn bounded, aggregate accuracy within a few points.
  EXPECT_LE(result.flips_vs_baseline, dataset.examples().size() / 5);
  EXPECT_NEAR(result.accuracy, evaluate_baseline(dataset).accuracy, 0.1);
}

TEST(Integration, AcceleratorLatencyBeatsNaiveOnSkippedLayers) {
  const accel::HaanAccelerator accelerator(accel::haan_v1());
  accel::NormLayerWork computed;
  computed.n = 4096;
  computed.vectors = 64;
  accel::NormLayerWork skipped = computed;
  skipped.isd_skipped = true;
  skipped.kind = model::NormKind::kRMSNorm;
  EXPECT_LT(accelerator.time_layer(skipped).cycles,
            accelerator.time_layer(computed).cycles);
  EXPECT_LT(accelerator.layer_energy_uj(skipped),
            accelerator.layer_energy_uj(computed));
}

TEST(Integration, EngineAndAcceleratorAgreeOnTotals) {
  // The baselines::HaanEngine is a thin adapter over the accel cycle model;
  // its workload total must equal the per-layer sum.
  const baselines::HaanEngine engine(accel::haan_v1());
  const auto dims = model::real_dims_llama7b();
  const baselines::NormWorkload work = baselines::make_workload(
      dims, 32, /*skipped=*/10, /*nsub=*/2048, model::NormKind::kRMSNorm);
  const accel::HaanAccelerator accelerator(accel::haan_v1());

  accel::NormLayerWork computed;
  computed.n = dims.d_model;
  computed.vectors = 32;
  computed.nsub = 2048;
  computed.kind = model::NormKind::kRMSNorm;
  accel::NormLayerWork skipped = computed;
  skipped.isd_skipped = true;

  const double expected =
      54.0 * accelerator.time_layer(computed).latency_us(accel::haan_v1()) +
      10.0 * accelerator.time_layer(skipped).latency_us(accel::haan_v1());
  EXPECT_NEAR(engine.total_latency_us(work), expected, 1e-9);
}

TEST(Integration, TaskAccuracyPreservedUnderFullHaanConfig) {
  auto& p = pipeline();
  auto spec = eval::task_suite_for("LLaMA-7B")[1];  // PIQA
  spec.context_len = 8;
  const auto dataset = eval::TaskDataset::generate(p.model, spec, 128);

  core::HaanConfig config = core::llama7b_algorithm_config(p.config.d_model);
  config.plan = p.calibration.plan;
  const auto result = eval::evaluate_accuracy_parallel(
      p.model, [&] { return std::make_unique<core::HaanNormProvider>(config); },
      dataset, 8);
  const auto baseline = eval::evaluate_baseline(dataset);
  // Width 64 is the noisiest surrogate (subsample floor 48/64 = 5.1% ISD
  // noise) and n=128 examples carry +-3% churn noise of their own; the
  // width-128 benches demonstrate the paper's sub-percent deltas.
  EXPECT_NEAR(result.accuracy, baseline.accuracy, 0.12);
}

}  // namespace
}  // namespace haan
