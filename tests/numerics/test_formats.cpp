#include "numerics/formats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace haan::numerics {
namespace {

TEST(Formats, Names) {
  EXPECT_EQ(to_string(NumericFormat::kFP32), "FP32");
  EXPECT_EQ(to_string(NumericFormat::kFP16), "FP16");
  EXPECT_EQ(to_string(NumericFormat::kBF16), "BF16");
  EXPECT_EQ(to_string(NumericFormat::kINT8), "INT8");
  EXPECT_EQ(format_from_string("fp16"), NumericFormat::kFP16);
  EXPECT_EQ(format_from_string("INT8"), NumericFormat::kINT8);
}

TEST(Formats, Bits) {
  EXPECT_EQ(bits_of(NumericFormat::kFP32), 32);
  EXPECT_EQ(bits_of(NumericFormat::kFP16), 16);
  EXPECT_EQ(bits_of(NumericFormat::kBF16), 16);
  EXPECT_EQ(bits_of(NumericFormat::kINT8), 8);
}

TEST(Formats, IsFloat) {
  EXPECT_TRUE(is_float(NumericFormat::kFP32));
  EXPECT_TRUE(is_float(NumericFormat::kFP16));
  EXPECT_FALSE(is_float(NumericFormat::kINT8));
}

TEST(Formats, Fp32PassThrough) {
  EXPECT_EQ(quantize_dequantize(1.2345678f, NumericFormat::kFP32), 1.2345678f);
}

TEST(Formats, Int8Grid) {
  const float scale = 0.1f;
  EXPECT_FLOAT_EQ(quantize_dequantize(0.25f, NumericFormat::kINT8, scale), 0.2f);
  EXPECT_FLOAT_EQ(quantize_dequantize(0.26f, NumericFormat::kINT8, scale), 0.3f);
  EXPECT_FLOAT_EQ(quantize_dequantize(-0.25f, NumericFormat::kINT8, scale), -0.2f);
}

TEST(Formats, Int8Clamps) {
  const float scale = 1.0f;
  EXPECT_FLOAT_EQ(quantize_dequantize(200.0f, NumericFormat::kINT8, scale), 127.0f);
  EXPECT_FLOAT_EQ(quantize_dequantize(-200.0f, NumericFormat::kINT8, scale), -128.0f);
}

TEST(Formats, ChooseInt8ScaleCoversMax) {
  std::vector<float> values{0.5f, -3.7f, 1.2f};
  const float scale = choose_int8_scale(values);
  EXPECT_FLOAT_EQ(scale, 3.7f / 127.0f);
  // With that scale the max element is exactly representable.
  EXPECT_NEAR(quantize_dequantize(-3.7f, NumericFormat::kINT8, scale), -3.7f, 1e-6f);
}

TEST(Formats, ChooseInt8ScaleZeroVector) {
  std::vector<float> zeros(10, 0.0f);
  EXPECT_FLOAT_EQ(choose_int8_scale(zeros), 1.0f);
}

TEST(Formats, SpanQuantization) {
  std::vector<float> values{1.0f, 2.0f, 3.0f};
  quantize_dequantize_span(values, NumericFormat::kFP16);
  EXPECT_FLOAT_EQ(values[0], 1.0f);
  EXPECT_FLOAT_EQ(values[2], 3.0f);
}

class QuantizationErrorSweep : public ::testing::TestWithParam<NumericFormat> {};

TEST_P(QuantizationErrorSweep, ErrorBoundedByFormatResolution) {
  const NumericFormat format = GetParam();
  common::Rng rng(11);
  std::vector<float> values(512);
  rng.fill_gaussian(values, 0.0, 1.0);
  const float scale =
      format == NumericFormat::kINT8 ? choose_int8_scale(values) : 1.0f;
  double bound = 0.0;
  switch (format) {
    case NumericFormat::kFP32:
      bound = 0.0;
      break;
    case NumericFormat::kFP16:
      bound = std::ldexp(1.0, -11) * 4.0;  // half ULP at |x| up to ~4
      break;
    case NumericFormat::kBF16:
      bound = std::ldexp(1.0, -8) * 4.0;
      break;
    case NumericFormat::kINT8:
      bound = scale / 2.0 + 1e-7;
      break;
  }
  for (const float v : values) {
    const float q = quantize_dequantize(v, format, scale);
    EXPECT_LE(std::abs(q - v), bound + 1e-12) << to_string(format) << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, QuantizationErrorSweep,
                         ::testing::Values(NumericFormat::kFP32, NumericFormat::kFP16,
                                           NumericFormat::kBF16, NumericFormat::kINT8));

}  // namespace
}  // namespace haan::numerics
