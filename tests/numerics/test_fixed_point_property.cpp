// Randomized algebraic property tests for the fixed-point substrate: the
// accelerator datapath's correctness rests on these invariants holding for
// every format it is configured with.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "numerics/fixed_point.hpp"

namespace haan::numerics {
namespace {

struct FormatCase {
  FixedFormat format;
  std::uint64_t seed;
};

class FixedPropertySweep : public ::testing::TestWithParam<FormatCase> {
 protected:
  double random_in_range(common::Rng& rng, double shrink = 4.0) const {
    const auto& f = GetParam().format;
    return rng.uniform(f.min_value() / shrink, f.max_value() / shrink);
  }
};

TEST_P(FixedPropertySweep, QuantizeIsIdempotent) {
  common::Rng rng(GetParam().seed);
  for (int i = 0; i < 2000; ++i) {
    const Fixed x = Fixed::from_double(random_in_range(rng), GetParam().format);
    const Fixed again = Fixed::from_double(x.to_double(), GetParam().format);
    EXPECT_EQ(again.raw(), x.raw());
  }
}

TEST_P(FixedPropertySweep, AddCommutes) {
  common::Rng rng(GetParam().seed + 1);
  for (int i = 0; i < 2000; ++i) {
    const Fixed a = Fixed::from_double(random_in_range(rng), GetParam().format);
    const Fixed b = Fixed::from_double(random_in_range(rng), GetParam().format);
    EXPECT_EQ(add(a, b).raw(), add(b, a).raw());
  }
}

TEST_P(FixedPropertySweep, MulCommutes) {
  common::Rng rng(GetParam().seed + 2);
  for (int i = 0; i < 2000; ++i) {
    const Fixed a = Fixed::from_double(random_in_range(rng, 1e3), GetParam().format);
    const Fixed b = Fixed::from_double(random_in_range(rng, 1e3), GetParam().format);
    EXPECT_EQ(mul(a, b, GetParam().format).raw(), mul(b, a, GetParam().format).raw());
  }
}

TEST_P(FixedPropertySweep, SubIsAddOfNegation) {
  common::Rng rng(GetParam().seed + 3);
  for (int i = 0; i < 2000; ++i) {
    const double va = random_in_range(rng);
    const double vb = random_in_range(rng);
    const Fixed a = Fixed::from_double(va, GetParam().format);
    const Fixed b = Fixed::from_double(vb, GetParam().format);
    const Fixed neg_b = Fixed::from_double(-b.to_double(), GetParam().format);
    // -raw(b) is representable unless raw(b) == raw_min (asymmetry of two's
    // complement); skip that case.
    if (b.raw() == GetParam().format.raw_min()) continue;
    EXPECT_EQ(sub(a, b).raw(), add(a, neg_b).raw());
  }
}

TEST_P(FixedPropertySweep, QuantizationErrorWithinHalfUlp) {
  common::Rng rng(GetParam().seed + 4);
  const double half_ulp = GetParam().format.resolution() / 2.0;
  for (int i = 0; i < 2000; ++i) {
    const double v = random_in_range(rng);
    const Fixed x = Fixed::from_double(v, GetParam().format);
    EXPECT_LE(std::abs(x.to_double() - v), half_ulp + 1e-15);
  }
}

TEST_P(FixedPropertySweep, SaturationIsMonotone) {
  // If u <= v then from_double(u) <= from_double(v), including through
  // saturation at the extremes.
  common::Rng rng(GetParam().seed + 5);
  const auto& f = GetParam().format;
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.uniform(f.min_value() * 3.0, f.max_value() * 3.0);
    const double v = rng.uniform(f.min_value() * 3.0, f.max_value() * 3.0);
    const Fixed a = Fixed::from_double(std::min(u, v), f);
    const Fixed b = Fixed::from_double(std::max(u, v), f);
    EXPECT_LE(a.raw(), b.raw());
  }
}

TEST_P(FixedPropertySweep, ConvertRoundTripWideningIsExact) {
  // Converting to any wider format (more total and fraction bits) and back
  // must reproduce the original raw value.
  common::Rng rng(GetParam().seed + 6);
  const auto& f = GetParam().format;
  FixedFormat wider{f.total_bits + 8, f.frac_bits + 4};
  if (!wider.valid()) return;
  for (int i = 0; i < 2000; ++i) {
    const Fixed x = Fixed::from_double(random_in_range(rng), f);
    const Fixed back = x.convert_to(wider).convert_to(f);
    EXPECT_EQ(back.raw(), x.raw());
  }
}

TEST_P(FixedPropertySweep, ShiftLeftThenRightRestoresWhenInRange) {
  common::Rng rng(GetParam().seed + 7);
  for (int i = 0; i < 2000; ++i) {
    const Fixed x = Fixed::from_double(random_in_range(rng, 64.0), GetParam().format);
    const Fixed shifted = x.shifted_left(3);
    if (shifted.raw() == GetParam().format.raw_max() ||
        shifted.raw() == GetParam().format.raw_min()) {
      continue;  // saturated, not reversible
    }
    EXPECT_EQ(shifted.shifted_right(3).raw(), x.raw());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, FixedPropertySweep,
    ::testing::Values(FormatCase{{16, 8}, 11}, FormatCase{{18, 12}, 22},
                      FormatCase{{24, 12}, 33}, FormatCase{{26, 20}, 44},
                      FormatCase{{32, 16}, 55}, FormatCase{{40, 16}, 66},
                      FormatCase{{8, 4}, 77}));

}  // namespace
}  // namespace haan::numerics
