#include "numerics/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace haan::numerics {
namespace {

TEST(FixedFormat, Properties) {
  const FixedFormat q{16, 12};  // Q3.12
  EXPECT_EQ(q.int_bits(), 3);
  EXPECT_DOUBLE_EQ(q.resolution(), std::ldexp(1.0, -12));
  EXPECT_DOUBLE_EQ(q.max_value(), (32768.0 - 1.0) / 4096.0);
  EXPECT_DOUBLE_EQ(q.min_value(), -8.0);
  EXPECT_EQ(q.to_string(), "Q3.12");
  EXPECT_TRUE(q.valid());
}

TEST(FixedFormat, InvalidFormats) {
  EXPECT_FALSE((FixedFormat{1, 0}).valid());
  EXPECT_FALSE((FixedFormat{64, 16}).valid());
  EXPECT_FALSE((FixedFormat{16, 16}).valid());
  EXPECT_FALSE((FixedFormat{16, -1}).valid());
  EXPECT_TRUE((FixedFormat{2, 0}).valid());
  EXPECT_TRUE((FixedFormat{48, 47}).valid());
}

TEST(Fixed, ExactValuesRoundTrip) {
  const FixedFormat q{24, 12};
  for (const double v : {0.0, 1.0, -1.0, 0.5, -0.25, 1234.75, -2047.0}) {
    EXPECT_DOUBLE_EQ(Fixed::from_double(v, q).to_double(), v);
  }
}

TEST(Fixed, QuantizationErrorBounded) {
  const FixedFormat q{20, 10};
  common::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-500.0, 500.0);
    const double quantized = Fixed::from_double(v, q).to_double();
    EXPECT_LE(std::abs(quantized - v), q.resolution() / 2.0 + 1e-15);
  }
}

TEST(Fixed, SaturationAtBounds) {
  const FixedFormat q{8, 4};  // range [-8, 7.9375]
  EXPECT_DOUBLE_EQ(Fixed::from_double(100.0, q).to_double(), q.max_value());
  EXPECT_DOUBLE_EQ(Fixed::from_double(-100.0, q).to_double(), q.min_value());
}

TEST(Fixed, WrapOverflowMode) {
  const FixedFormat q{8, 0};  // int8 range
  const Fixed wrapped =
      Fixed::from_double(130.0, q, RoundingMode::kNearestEven, OverflowMode::kWrap);
  EXPECT_DOUBLE_EQ(wrapped.to_double(), -126.0);  // 130 - 256
}

TEST(Fixed, NanFlushesToZero) {
  const FixedFormat q{16, 8};
  EXPECT_DOUBLE_EQ(Fixed::from_double(std::nan(""), q).to_double(), 0.0);
}

TEST(Fixed, RoundingModes) {
  const FixedFormat q{16, 0};  // integers
  // 2.5: nearest-even -> 2, nearest-up -> 3, truncate -> 2.
  EXPECT_DOUBLE_EQ(Fixed::from_double(2.5, q, RoundingMode::kNearestEven).to_double(), 2.0);
  EXPECT_DOUBLE_EQ(Fixed::from_double(2.5, q, RoundingMode::kNearestUp).to_double(), 3.0);
  EXPECT_DOUBLE_EQ(Fixed::from_double(2.5, q, RoundingMode::kTruncate).to_double(), 2.0);
  // 3.5: nearest-even -> 4.
  EXPECT_DOUBLE_EQ(Fixed::from_double(3.5, q, RoundingMode::kNearestEven).to_double(), 4.0);
  // -2.5: truncate floors toward -inf -> -3.
  EXPECT_DOUBLE_EQ(Fixed::from_double(-2.5, q, RoundingMode::kTruncate).to_double(), -3.0);
}

TEST(Fixed, AddSub) {
  const FixedFormat q{16, 8};
  const Fixed a = Fixed::from_double(1.5, q);
  const Fixed b = Fixed::from_double(2.25, q);
  EXPECT_DOUBLE_EQ(add(a, b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ(sub(a, b).to_double(), -0.75);
}

TEST(Fixed, AddSaturates) {
  const FixedFormat q{8, 0};
  const Fixed a = Fixed::from_double(100.0, q);
  const Fixed b = Fixed::from_double(100.0, q);
  EXPECT_DOUBLE_EQ(add(a, b).to_double(), 127.0);
  EXPECT_DOUBLE_EQ(sub(Fixed::from_double(-100.0, q), b).to_double(), -128.0);
}

TEST(Fixed, MulExactWhenRepresentable) {
  const FixedFormat q{24, 12};
  const Fixed a = Fixed::from_double(1.5, q);
  const Fixed b = Fixed::from_double(-2.5, q);
  EXPECT_DOUBLE_EQ(mul(a, b, q).to_double(), -3.75);
}

TEST(Fixed, MulIntoWiderFormat) {
  const FixedFormat narrow{12, 8};
  const FixedFormat wide{32, 20};
  const Fixed a = Fixed::from_double(3.14453125, narrow);  // exact in Q3.8
  const Fixed product = mul(a, a, wide);
  EXPECT_NEAR(product.to_double(), a.to_double() * a.to_double(), wide.resolution());
}

TEST(Fixed, MulRoundsDiscardedBits) {
  const FixedFormat q{16, 8};
  const Fixed a = Fixed::from_raw(1, q);   // 2^-8
  const Fixed b = Fixed::from_raw(128, q); // 0.5
  // product = 2^-9, not representable in Q.8: ties-to-even -> 0.
  EXPECT_DOUBLE_EQ(mul(a, b, q).to_double(), 0.0);
  const Fixed c = Fixed::from_raw(3, q);  // 3*2^-8
  // 3*2^-9 = 1.5 ulp -> rounds to even = 2 ulp.
  EXPECT_DOUBLE_EQ(mul(c, b, q).to_double(), 2.0 * q.resolution());
}

TEST(Fixed, ConvertBetweenFormats) {
  const FixedFormat a{16, 4};
  const FixedFormat b{24, 12};
  const Fixed x = Fixed::from_double(5.0625, a);
  EXPECT_DOUBLE_EQ(x.convert_to(b).to_double(), 5.0625);  // gaining bits exact
  const Fixed y = Fixed::from_double(1.0 + std::ldexp(1.0, -12), b);
  EXPECT_DOUBLE_EQ(y.convert_to(a).to_double(), 1.0);  // losing bits rounds
}

TEST(Fixed, ConvertSaturatesNarrowTarget) {
  const FixedFormat wide{32, 8};
  const FixedFormat narrow{8, 4};
  const Fixed big = Fixed::from_double(1000.0, wide);
  EXPECT_DOUBLE_EQ(big.convert_to(narrow).to_double(), narrow.max_value());
}

TEST(Fixed, Shifts) {
  const FixedFormat q{16, 8};
  const Fixed x = Fixed::from_double(1.0, q);
  EXPECT_DOUBLE_EQ(x.shifted_left(2).to_double(), 4.0);
  EXPECT_DOUBLE_EQ(x.shifted_right(3).to_double(), 0.125);
  // Left shift saturates on overflow.
  const Fixed big = Fixed::from_double(100.0, q);
  EXPECT_DOUBLE_EQ(big.shifted_left(4).to_double(), q.max_value());
}

TEST(Fixed, ShiftRightIsArithmeticForNegatives) {
  const FixedFormat q{16, 8};
  const Fixed x = Fixed::from_double(-4.0, q);
  EXPECT_DOUBLE_EQ(x.shifted_right(1).to_double(), -2.0);
}

/// Property sweep: add is exact (no rounding) whenever no saturation occurs.
class FixedAddProperty : public ::testing::TestWithParam<int> {};

TEST_P(FixedAddProperty, AddExactWithinRange) {
  const FixedFormat q{32, GetParam()};
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);
  for (int i = 0; i < 2000; ++i) {
    const double bound = q.max_value() / 4.0;
    const double va = rng.uniform(-bound, bound);
    const double vb = rng.uniform(-bound, bound);
    const Fixed a = Fixed::from_double(va, q);
    const Fixed b = Fixed::from_double(vb, q);
    EXPECT_DOUBLE_EQ(add(a, b).to_double(), a.to_double() + b.to_double());
  }
}

INSTANTIATE_TEST_SUITE_P(FracBits, FixedAddProperty, ::testing::Values(0, 4, 12, 16, 24));

}  // namespace
}  // namespace haan::numerics
