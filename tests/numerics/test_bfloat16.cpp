#include "numerics/bfloat16.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace haan::numerics {
namespace {

TEST(BFloat16, KnownPatterns) {
  EXPECT_EQ(BFloat16(0.0f).bits(), 0x0000u);
  EXPECT_EQ(BFloat16(1.0f).bits(), 0x3F80u);
  EXPECT_EQ(BFloat16(-2.0f).bits(), 0xC000u);
}

TEST(BFloat16, PreservesFloatExponentRange) {
  // bfloat16 shares float's exponent: 1e38 must stay finite.
  const BFloat16 big(1e38f);
  EXPECT_FALSE(big.is_nan());
  EXPECT_TRUE(std::isfinite(big.to_float()));
  EXPECT_NEAR(big.to_float(), 1e38f, 1e38f * 0.01);
}

TEST(BFloat16, RoundTripExactForBFloatValues) {
  common::Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const auto bits = static_cast<std::uint16_t>(rng.next_u64());
    const BFloat16 b = BFloat16::from_bits(bits);
    if (b.is_nan()) continue;
    EXPECT_EQ(BFloat16(b.to_float()).bits(), b.bits());
  }
}

TEST(BFloat16, RelativeErrorBounded) {
  common::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.gaussian(0.0, 100.0));
    if (x == 0.0f) continue;
    const float converted = BFloat16(x).to_float();
    // 8-bit mantissa (7 stored): half ULP = 2^-8.
    EXPECT_LE(std::abs(converted - x) / std::abs(x), std::ldexp(1.0, -8) * 1.0001);
  }
}

TEST(BFloat16, NanHandling) {
  const BFloat16 nan(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(nan.is_nan());
  EXPECT_TRUE(std::isnan(nan.to_float()));
}

TEST(BFloat16, RoundToNearestEven) {
  // 1 + 2^-8 is exactly halfway between 1.0 and the next bfloat: ties to
  // even -> 1.0.
  EXPECT_EQ(BFloat16(1.0f + std::ldexp(1.0f, -8)).bits(), 0x3F80u);
  // 1 + 3*2^-8 is halfway between (1+2^-7) and (1+2^-6): ties to even.
  EXPECT_EQ(BFloat16(1.0f + 3.0f * std::ldexp(1.0f, -8)).bits(), 0x3F82u);
}

TEST(BFloat16, Arithmetic) {
  EXPECT_EQ((BFloat16(2.0f) + BFloat16(3.0f)).to_float(), 5.0f);
  EXPECT_EQ((BFloat16(2.0f) * BFloat16(3.0f)).to_float(), 6.0f);
  EXPECT_EQ((BFloat16(7.0f) - BFloat16(3.0f)).to_float(), 4.0f);
  EXPECT_EQ((BFloat16(8.0f) / BFloat16(2.0f)).to_float(), 4.0f);
}

}  // namespace
}  // namespace haan::numerics
