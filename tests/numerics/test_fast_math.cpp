#include "numerics/fast_math.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace haan::numerics {
namespace {

TEST(FastInvSqrt, InitialGuessWithinKnownBound) {
  // The classic 0x5F3759DF seed has worst-case relative error ~3.44%.
  common::Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const float x = static_cast<float>(std::exp(rng.uniform(-20.0, 20.0)));
    const float guess = inv_sqrt_initial_guess(x);
    EXPECT_LT(inv_sqrt_rel_error(x, guess), 0.035) << "x=" << x;
  }
}

TEST(FastInvSqrt, OneNewtonIterationBelowQuarterPercent) {
  // After one iteration the error drops below ~0.18% (paper: "a single
  // iteration is adequate").
  common::Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const float x = static_cast<float>(std::exp(rng.uniform(-20.0, 20.0)));
    const float y = fast_inv_sqrt(x, 1);
    EXPECT_LT(inv_sqrt_rel_error(x, y), 0.0025) << "x=" << x;
  }
}

TEST(FastInvSqrt, TwoIterationsBelowTenPpm) {
  common::Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const float x = static_cast<float>(std::exp(rng.uniform(-10.0, 10.0)));
    const float y = fast_inv_sqrt(x, 2);
    EXPECT_LT(inv_sqrt_rel_error(x, y), 1e-5) << "x=" << x;
  }
}

TEST(FastInvSqrt, NewtonStepMatchesFormula) {
  const float x = 2.0f, y = 0.7f;
  EXPECT_FLOAT_EQ(inv_sqrt_newton_step(x, y), y * (1.5f - 0.5f * x * y * y));
}

TEST(FastInvSqrt, MonotoneErrorReductionPerIteration) {
  common::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(std::exp(rng.uniform(-6.0, 6.0)));
    const double e0 = inv_sqrt_rel_error(x, fast_inv_sqrt(x, 0));
    const double e1 = inv_sqrt_rel_error(x, fast_inv_sqrt(x, 1));
    const double e2 = inv_sqrt_rel_error(x, fast_inv_sqrt(x, 2));
    EXPECT_LE(e1, e0 + 1e-7);
    EXPECT_LE(e2, e1 + 1e-7);
  }
}

TEST(FastInvSqrt, ExactPowersOfFour) {
  // 1/sqrt(4) = 0.5: one iteration should land within float rounding noise.
  EXPECT_NEAR(fast_inv_sqrt(4.0f, 3), 0.5f, 1e-6f);
  EXPECT_NEAR(fast_inv_sqrt(16.0f, 3), 0.25f, 1e-6f);
  EXPECT_NEAR(fast_inv_sqrt(1.0f, 3), 1.0f, 1e-6f);
}

TEST(FastInvSqrt, MagicConstantIsOptimalish) {
  // Sweep nearby magic constants: 0x5F3759DF must be near-optimal — no
  // candidate in a small neighbourhood should beat it by a large margin
  // after one Newton step.
  const double base = worst_inv_sqrt_error(1e-6, 1e6, 4000, 1, kInvSqrtMagic);
  for (const std::uint32_t delta : {0x10000u, 0x40000u}) {
    const double worse_hi =
        worst_inv_sqrt_error(1e-6, 1e6, 4000, 1, kInvSqrtMagic + delta);
    const double worse_lo =
        worst_inv_sqrt_error(1e-6, 1e6, 4000, 1, kInvSqrtMagic - delta);
    EXPECT_GT(worse_hi, base * 0.9);
    EXPECT_GT(worse_lo, base * 0.9);
  }
}

TEST(FastLog2, MatchesExactWithinSigmaBound) {
  // The linearization log2(1+m) ~ m + sigma with sigma = 0.0450465 has
  // absolute error < ~0.0573 over m in [0,1) (worst at m = 1/ln2 - 1).
  common::Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const float x = static_cast<float>(std::exp(rng.uniform(-30.0, 30.0)));
    const double approx = fast_log2(x);
    const double exact = std::log2(static_cast<double>(x));
    EXPECT_NEAR(approx, exact, 0.058) << "x=" << x;
  }
}

TEST(FastLog2, PowersOfTwoCarrySigmaBias) {
  // At x = 2^k the mantissa is 0 and the approximation is k + sigma.
  EXPECT_NEAR(fast_log2(1.0f), kSigma, 1e-9);
  EXPECT_NEAR(fast_log2(2.0f), 1.0 + kSigma, 1e-9);
  EXPECT_NEAR(fast_log2(1024.0f), 10.0 + kSigma, 1e-9);
}

TEST(ExactInvSqrt, Reference) {
  EXPECT_DOUBLE_EQ(exact_inv_sqrt(4.0), 0.5);
  EXPECT_DOUBLE_EQ(exact_inv_sqrt(1.0), 1.0);
  EXPECT_NEAR(exact_inv_sqrt(2.0), 0.70710678118654752, 1e-15);
}

class InvSqrtRangeSweep : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(InvSqrtRangeSweep, WorstErrorStableAcrossDecades) {
  const auto [lo, hi] = GetParam();
  // The bit-hack error is periodic in the exponent: every decade behaves the
  // same, so worst error must match the global bound.
  const double worst = worst_inv_sqrt_error(lo, hi, 2000, 1);
  EXPECT_LT(worst, 0.0025);
  EXPECT_GT(worst, 0.0005);  // and it is not accidentally exact
}

INSTANTIATE_TEST_SUITE_P(
    Decades, InvSqrtRangeSweep,
    ::testing::Values(std::make_pair(1e-8, 1e-6), std::make_pair(1e-2, 1.0),
                      std::make_pair(1.0, 1e2), std::make_pair(1e6, 1e8)));

}  // namespace
}  // namespace haan::numerics
