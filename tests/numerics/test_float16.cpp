#include "numerics/float16.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/rng.hpp"

namespace haan::numerics {
namespace {

TEST(Float16, KnownBitPatterns) {
  EXPECT_EQ(Float16(0.0f).bits(), 0x0000u);
  EXPECT_EQ(Float16(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(Float16(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(Float16(-1.0f).bits(), 0xBC00u);
  EXPECT_EQ(Float16(2.0f).bits(), 0x4000u);
  EXPECT_EQ(Float16(0.5f).bits(), 0x3800u);
  EXPECT_EQ(Float16(65504.0f).bits(), 0x7BFFu);  // max finite
  EXPECT_EQ(Float16(1.5f).bits(), 0x3E00u);
}

TEST(Float16, OverflowToInfinity) {
  EXPECT_TRUE(Float16(65520.0f).is_inf());  // rounds up past max
  EXPECT_TRUE(Float16(1e10f).is_inf());
  EXPECT_TRUE(Float16(-1e10f).is_inf());
  EXPECT_TRUE(Float16(-1e10f).sign());
}

TEST(Float16, LargestValueBelowOverflowStaysFinite) {
  EXPECT_FALSE(Float16(65503.0f).is_inf());
  EXPECT_EQ(Float16(65503.0f).to_float(), 65504.0f);  // rounds to max
}

TEST(Float16, SubnormalsRepresentable) {
  const float min_sub = std::ldexp(1.0f, -24);
  EXPECT_EQ(Float16(min_sub).bits(), 0x0001u);
  EXPECT_EQ(Float16::from_bits(0x0001u).to_float(), min_sub);
  // Half of min subnormal underflows to zero (round to even).
  EXPECT_TRUE(Float16(min_sub / 2.0f).is_zero());
  // 0.75 * min_sub rounds to min_sub.
  EXPECT_EQ(Float16(min_sub * 0.75f).bits(), 0x0001u);
}

TEST(Float16, SubnormalBoundary) {
  const float min_normal = std::ldexp(1.0f, -14);
  EXPECT_EQ(Float16(min_normal).bits(), 0x0400u);
  // Clearly below the subnormal/normal midpoint rounds down to a subnormal.
  const float below = std::ldexp(0.999f, -14);
  const Float16 h(below);
  EXPECT_LT(h.bits(), 0x0400u);
  EXPECT_GT(h.bits(), 0x0000u);
}

TEST(Float16, NanPropagation) {
  const Float16 nan(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(nan.is_nan());
  EXPECT_TRUE(std::isnan(nan.to_float()));
  EXPECT_FALSE(nan == nan);  // IEEE semantics
}

TEST(Float16, InfinityConversions) {
  const Float16 inf(std::numeric_limits<float>::infinity());
  EXPECT_TRUE(inf.is_inf());
  EXPECT_EQ(inf.bits(), 0x7C00u);
  EXPECT_TRUE(std::isinf(inf.to_float()));
}

TEST(Float16, RoundTripExactForAllFiniteHalves) {
  // Every finite half must survive half -> float -> half exactly.
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const Float16 h = Float16::from_bits(static_cast<std::uint16_t>(bits));
    if (h.is_nan()) continue;
    const Float16 round_trip(h.to_float());
    EXPECT_EQ(round_trip.bits(), h.bits()) << "bits=0x" << std::hex << bits;
  }
}

TEST(Float16, RoundToNearestEven) {
  // 1.0 + 2^-11 is exactly halfway between 1.0 and 1.0+2^-10: ties to even
  // (mantissa 0 is even) -> 1.0.
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(Float16(halfway).bits(), 0x3C00u);
  // 1.0 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even -> the
  // larger (mantissa 2).
  const float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(Float16(halfway2).bits(), 0x3C02u);
}

TEST(Float16, ConversionErrorBounded) {
  common::Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const float x = static_cast<float>(rng.uniform(-1000.0, 1000.0));
    const float converted = Float16(x).to_float();
    if (x == 0.0f) continue;
    // Relative error bounded by half ULP: 2^-11.
    EXPECT_LE(std::abs(converted - x) / std::abs(x), std::ldexp(1.0, -11) * 1.0001);
  }
}

TEST(Float16, ArithmeticRoundsOncePerOp) {
  const Float16 a(1.0f), b(std::ldexp(1.0f, -12));
  // 1.0 + tiny rounds back to 1.0 in half precision.
  EXPECT_EQ((a + b).bits(), Float16(1.0f).bits());
  const Float16 c(3.0f), d(3.0f);
  EXPECT_EQ((c * d).to_float(), 9.0f);
  EXPECT_EQ((c / d).to_float(), 1.0f);
  EXPECT_EQ((c - d).to_float(), 0.0f);
}

TEST(Float16, ComparisonOperators) {
  EXPECT_TRUE(Float16(1.0f) < Float16(2.0f));
  EXPECT_FALSE(Float16(2.0f) < Float16(1.0f));
  EXPECT_TRUE(Float16(0.0f) == Float16(-0.0f));  // IEEE: +0 == -0
}

TEST(Float16, UlpDistance) {
  EXPECT_EQ(ulp_distance(Float16(1.0f), Float16(1.0f)), 0);
  const Float16 one(1.0f);
  const Float16 next = Float16::from_bits(one.bits() + 1);
  EXPECT_EQ(ulp_distance(one, next), 1);
  // Across zero: -min_sub to +min_sub is 2 ulps on the monotone line.
  EXPECT_EQ(ulp_distance(Float16::from_bits(0x8001), Float16::from_bits(0x0001)), 2);
}

TEST(Float16, NamedConstants) {
  EXPECT_EQ(Float16::max().to_float(), 65504.0f);
  EXPECT_EQ(Float16::min_normal().to_float(), std::ldexp(1.0f, -14));
  EXPECT_EQ(Float16::min_subnormal().to_float(), std::ldexp(1.0f, -24));
  EXPECT_TRUE(Float16::infinity().is_inf());
  EXPECT_TRUE(Float16::quiet_nan().is_nan());
}

class Float16ExactValues : public ::testing::TestWithParam<float> {};

TEST_P(Float16ExactValues, ExactlyRepresentableValuesSurvive) {
  const float x = GetParam();
  EXPECT_EQ(Float16(x).to_float(), x);
}

INSTANTIATE_TEST_SUITE_P(PowersAndSmallInts, Float16ExactValues,
                         ::testing::Values(0.25f, 0.125f, 3.0f, 10.0f, 100.0f,
                                           1024.0f, 2048.0f, -5.5f, 0.0625f));

}  // namespace
}  // namespace haan::numerics
