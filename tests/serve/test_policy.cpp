#include "serve/policy.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "serve/scheduler.hpp"

namespace haan::serve {
namespace {

Request make_request(std::uint64_t id, std::size_t len,
                     Clock::time_point enqueued_at = Clock::now()) {
  Request request;
  request.id = id;
  request.tokens.assign(len, 0);
  request.enqueued_at = enqueued_at;
  return request;
}

PolicyConfig edf_config() {
  PolicyConfig config;
  config.policy = SchedPolicy::kEdf;
  return config;
}

// ---------------------------------------------------------------------------
// Policy names & environment resolution.

TEST(SchedPolicyStrings, RoundTrip) {
  for (const auto policy :
       {SchedPolicy::kFifo, SchedPolicy::kBinned, SchedPolicy::kEdf}) {
    const auto parsed = try_policy_from_string(to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(try_policy_from_string("sjf").has_value());
  EXPECT_FALSE(try_policy_from_string("").has_value());
}

TEST(SchedPolicyStrings, ResolveAgainstEnvironment) {
  unsetenv("HAAN_SCHED_POLICY");
  EXPECT_EQ(resolve_policy(SchedPolicy::kAuto), SchedPolicy::kFifo);

  setenv("HAAN_SCHED_POLICY", "edf", 1);
  EXPECT_EQ(resolve_policy(SchedPolicy::kAuto), SchedPolicy::kEdf);
  // Explicit policies pass through untouched.
  EXPECT_EQ(resolve_policy(SchedPolicy::kBinned), SchedPolicy::kBinned);

  setenv("HAAN_SCHED_POLICY", "not-a-policy", 1);
  EXPECT_EQ(resolve_policy(SchedPolicy::kAuto), SchedPolicy::kFifo);
  unsetenv("HAAN_SCHED_POLICY");
}

// ---------------------------------------------------------------------------
// Admission-control decision boundaries.

TEST(DecideAdmission, NoDeadlineIsNeverShedOrDegraded) {
  PolicyConfig config = edf_config();
  config.allow_shed = true;
  config.allow_degrade = true;
  config.shed_slack_us = 1e9;
  config.degrade_slack_us = 1e9;
  EXPECT_EQ(decide_admission(-1e12, /*has_deadline=*/false, config),
            OverloadAction::kServe);
}

TEST(DecideAdmission, ThresholdsAreStrictAndMonotone) {
  PolicyConfig config = edf_config();
  config.allow_shed = true;
  config.allow_degrade = true;
  config.shed_slack_us = 100.0;
  config.degrade_slack_us = 200.0;

  // serve -> degrade -> shed as slack shrinks; boundaries are strict <.
  EXPECT_EQ(decide_admission(250.0, true, config), OverloadAction::kServe);
  EXPECT_EQ(decide_admission(200.0, true, config), OverloadAction::kServe);
  EXPECT_EQ(decide_admission(150.0, true, config), OverloadAction::kDegrade);
  EXPECT_EQ(decide_admission(100.0, true, config), OverloadAction::kDegrade);
  EXPECT_EQ(decide_admission(99.0, true, config), OverloadAction::kShed);
  EXPECT_EQ(decide_admission(-1e6, true, config), OverloadAction::kShed);
}

TEST(DecideAdmission, ShedTakesPrecedenceOverDegrade) {
  PolicyConfig config = edf_config();
  config.allow_shed = true;
  config.allow_degrade = true;
  // Overlapping bands: shed wins below the shed threshold.
  config.shed_slack_us = 500.0;
  config.degrade_slack_us = 500.0;
  EXPECT_EQ(decide_admission(100.0, true, config), OverloadAction::kShed);
}

TEST(DecideAdmission, DisabledActionsFallThrough) {
  PolicyConfig config = edf_config();
  config.shed_slack_us = 500.0;
  config.degrade_slack_us = 500.0;

  // Neither allowed: always serve.
  EXPECT_EQ(decide_admission(-1.0, true, config), OverloadAction::kServe);

  // Shed disabled: deep-negative slack degrades instead.
  config.allow_degrade = true;
  EXPECT_EQ(decide_admission(-1e6, true, config), OverloadAction::kDegrade);
}

// ---------------------------------------------------------------------------
// PendingPool ordering.

TEST(PendingPool, FifoSelectsInInsertionOrder) {
  PolicyConfig config;
  config.policy = SchedPolicy::kFifo;
  PendingPool pool(config);
  for (std::uint64_t id = 0; id < 4; ++id) pool.push(make_request(id, 8));

  for (std::uint64_t id = 0; id < 4; ++id) {
    const auto index =
        pool.select(Clock::now(), std::nullopt, std::nullopt, false);
    ASSERT_TRUE(index.has_value());
    EXPECT_EQ(pool.extract(*index).id, id);
  }
  EXPECT_TRUE(pool.empty());
}

TEST(PendingPool, EdfPriorityBeatsDeadlineSlack) {
  PendingPool pool(edf_config());
  const auto now = Clock::now();
  Request urgent = make_request(0, 8, now);
  urgent.priority = 0;
  urgent.deadline_us = 100.0;  // tiny slack
  Request important = make_request(1, 8, now);
  important.priority = 1;
  important.deadline_us = 1e9;  // huge slack
  pool.push(urgent);
  pool.push(important);

  const auto index = pool.select(now, std::nullopt, std::nullopt, false);
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(pool.peek(*index).id, 1u);  // higher class first, slack second
}

TEST(PendingPool, EdfOrdersBySlackWithinPriority) {
  PendingPool pool(edf_config());
  const auto now = Clock::now();
  Request relaxed = make_request(0, 8, now);
  relaxed.deadline_us = 1e6;
  Request urgent = make_request(1, 8, now);
  urgent.deadline_us = 1e3;
  Request no_deadline = make_request(2, 8, now);  // infinite slack: last
  pool.push(relaxed);
  pool.push(urgent);
  pool.push(no_deadline);

  std::vector<std::uint64_t> order;
  while (!pool.empty()) {
    const auto index = pool.select(now, std::nullopt, std::nullopt, false);
    ASSERT_TRUE(index.has_value());
    order.push_back(pool.extract(*index).id);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 0, 2}));
}

TEST(PendingPool, AgingLiftsLongWaitersOverHigherClasses) {
  PolicyConfig config = edf_config();
  config.aging_us = 100.0;  // +1 effective priority per 100 us waited
  PendingPool pool(config);
  const auto now = Clock::now();

  Request old_low = make_request(0, 8, now - std::chrono::milliseconds(1));
  old_low.priority = 0;  // waited 1000 us -> +10 effective
  Request fresh_high = make_request(1, 8, now);
  fresh_high.priority = 5;
  pool.push(old_low);
  pool.push(fresh_high);

  EXPECT_GE(pool.effective_priority(old_low, now), 10.0);
  const auto index = pool.select(now, std::nullopt, std::nullopt, false);
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(pool.peek(*index).id, 0u);

  // Aging off: the same mix serves the higher class first.
  PendingPool no_aging(edf_config());
  no_aging.push(old_low);
  no_aging.push(fresh_high);
  const auto index2 = no_aging.select(now, std::nullopt, std::nullopt, false);
  ASSERT_TRUE(index2.has_value());
  EXPECT_EQ(no_aging.peek(*index2).id, 1u);
}

TEST(PendingPool, BinFilterAndRelaxation) {
  PolicyConfig config;
  config.policy = SchedPolicy::kBinned;
  config.bin_width = 16;
  PendingPool pool(config);
  const auto now = Clock::now();
  pool.push(make_request(0, 8, now));   // bin 0
  pool.push(make_request(1, 40, now));  // bin 2

  EXPECT_EQ(pool.bin_of(8), 0u);
  EXPECT_EQ(pool.bin_of(40), 2u);

  // Hard bin filter.
  const auto in_bin2 = pool.select(now, std::nullopt, 2, false);
  ASSERT_TRUE(in_bin2.has_value());
  EXPECT_EQ(pool.peek(*in_bin2).id, 1u);
  EXPECT_FALSE(pool.select(now, std::nullopt, 1, false).has_value());

  // Relaxed: nearest bin wins (both are distance 1 from bin 1; FIFO seq
  // breaks the tie).
  const auto relaxed = pool.select(now, std::nullopt, 1, true);
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_EQ(pool.peek(*relaxed).id, 0u);
}

TEST(PendingPool, LaneFilterSeparatesDegradedRequests) {
  PolicyConfig config;
  config.policy = SchedPolicy::kBinned;
  PendingPool pool(config);
  const auto now = Clock::now();
  Request normal = make_request(0, 8, now);
  Request degraded = make_request(1, 8, now);
  degraded.degraded = true;
  pool.push(normal);
  pool.push(degraded);

  EXPECT_TRUE(pool.has_lane(false));
  EXPECT_TRUE(pool.has_lane(true));
  const auto normal_index = pool.select(now, false, std::nullopt, false);
  const auto degraded_index = pool.select(now, true, std::nullopt, false);
  ASSERT_TRUE(normal_index.has_value());
  ASSERT_TRUE(degraded_index.has_value());
  EXPECT_EQ(pool.peek(*normal_index).id, 0u);
  EXPECT_EQ(pool.peek(*degraded_index).id, 1u);
}

TEST(PendingPool, ApplyAdmissionShedsAndStampsDegrade) {
  PolicyConfig config = edf_config();
  config.allow_shed = true;
  config.allow_degrade = true;
  config.shed_slack_us = 0.0;      // shed only already-missed deadlines
  config.degrade_slack_us = 1e12;  // everything else with a deadline degrades
  PendingPool pool(config);
  const auto now = Clock::now();

  Request missed = make_request(0, 8, now - std::chrono::milliseconds(10));
  missed.deadline_us = 100.0;  // long since blown
  Request tight = make_request(1, 8, now);
  tight.deadline_us = 1e6;
  Request immune = make_request(2, 8, now - std::chrono::hours(1));
  immune.deadline_us = 0.0;  // no deadline: untouchable
  pool.push(missed);
  pool.push(tight);
  pool.push(immune);

  std::vector<Request> shed;
  pool.apply_admission(now, shed);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].id, 0u);
  EXPECT_NE(shed[0].dequeued_at, Clock::time_point{});
  EXPECT_EQ(pool.size(), 2u);

  const auto degraded_index = pool.select(now, true, std::nullopt, false);
  ASSERT_TRUE(degraded_index.has_value());
  EXPECT_EQ(pool.peek(*degraded_index).id, 1u);
  const auto normal_index = pool.select(now, false, std::nullopt, false);
  ASSERT_TRUE(normal_index.has_value());
  EXPECT_EQ(pool.peek(*normal_index).id, 2u);
}

// ---------------------------------------------------------------------------
// BatchScheduler under the policies.

SchedulerConfig scheduler_config(SchedPolicy policy, std::size_t max_batch) {
  SchedulerConfig config;
  config.max_batch = max_batch;
  config.max_wait = std::chrono::microseconds(100);
  config.policy.policy = policy;
  return config;
}

TEST(PolicyBatchScheduler, BinnedFormsBinPureBatches) {
  RequestQueue queue(16);
  // Alternating short/long prompts: FIFO would form ragged batches; binned
  // groups each batch from one length bin.
  for (std::uint64_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(queue.push(make_request(id, id % 2 == 0 ? 8 : 32)));
  }
  queue.close();

  SchedulerConfig config = scheduler_config(SchedPolicy::kBinned, 4);
  config.policy.bin_width = 16;
  BatchScheduler scheduler(queue, config);
  EXPECT_EQ(scheduler.policy(), SchedPolicy::kBinned);

  const auto first = scheduler.next_batch();
  const auto second = scheduler.next_batch();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(first->requests.size(), 4u);
  ASSERT_EQ(second->requests.size(), 4u);
  // Oldest request (id 0, short) anchors the first batch; every request in a
  // batch shares its anchor's bin.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(first->requests[i].id, 2 * i);       // 0 2 4 6
    EXPECT_EQ(second->requests[i].id, 2 * i + 1);  // 1 3 5 7
  }
  EXPECT_FALSE(scheduler.next_batch().has_value());
}

TEST(PolicyBatchScheduler, EdfServesUrgentRequestsFirst) {
  RequestQueue queue(16);
  const auto now = Clock::now();
  for (std::uint64_t id = 0; id < 4; ++id) {
    Request request = make_request(id, 8, now);
    request.deadline_us = 1e6 * static_cast<double>(4 - id);  // id 3 = tightest
    ASSERT_TRUE(queue.push(request));
  }
  queue.close();

  BatchScheduler scheduler(queue, scheduler_config(SchedPolicy::kEdf, 2));
  const auto first = scheduler.next_batch();
  const auto second = scheduler.next_batch();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(first->requests.size(), 2u);
  EXPECT_EQ(first->requests[0].id, 3u);
  EXPECT_EQ(first->requests[1].id, 2u);
  EXPECT_EQ(second->requests[0].id, 1u);
  EXPECT_EQ(second->requests[1].id, 0u);
}

TEST(PolicyBatchScheduler, RowBudgetClosesBatches) {
  RequestQueue queue(16);
  for (std::uint64_t id = 0; id < 5; ++id) ASSERT_TRUE(queue.push(make_request(id, 4)));
  queue.close();

  SchedulerConfig config = scheduler_config(SchedPolicy::kBinned, 8);
  config.max_rows = 10;  // two 4-row prompts fit, a third would overflow
  BatchScheduler scheduler(queue, config);

  std::vector<std::size_t> sizes;
  while (const auto batch = scheduler.next_batch()) {
    sizes.push_back(batch->requests.size());
    std::size_t rows = 0;
    for (const Request& request : batch->requests) rows += request.tokens.size();
    EXPECT_LE(rows, config.max_rows);
  }
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 2, 1}));
}

TEST(PolicyBatchScheduler, ShedRequestsRideOutInBatchShed) {
  RequestQueue queue(16);
  const auto now = Clock::now();
  for (std::uint64_t id = 0; id < 2; ++id) {
    Request missed = make_request(id, 8, now - std::chrono::milliseconds(10));
    missed.deadline_us = 1.0;  // already blown
    ASSERT_TRUE(queue.push(missed));
  }
  ASSERT_TRUE(queue.push(make_request(2, 8, now)));  // no deadline
  queue.close();

  SchedulerConfig config = scheduler_config(SchedPolicy::kEdf, 4);
  config.policy.allow_shed = true;
  BatchScheduler scheduler(queue, config);

  const auto batch = scheduler.next_batch();
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->requests.size(), 1u);
  EXPECT_EQ(batch->requests[0].id, 2u);
  std::set<std::uint64_t> shed_ids;
  for (const Request& request : batch->shed) shed_ids.insert(request.id);
  EXPECT_EQ(shed_ids, (std::set<std::uint64_t>{0, 1}));
  EXPECT_FALSE(scheduler.next_batch().has_value());
}

TEST(PolicyBatchScheduler, DegradedAndNormalRequestsNeverShareABatch) {
  RequestQueue queue(16);
  const auto now = Clock::now();
  for (std::uint64_t id = 0; id < 2; ++id) {
    Request tight = make_request(id, 8, now);
    tight.deadline_us = 1e6;  // inside the degrade band below
    ASSERT_TRUE(queue.push(tight));
  }
  for (std::uint64_t id = 2; id < 4; ++id) {
    ASSERT_TRUE(queue.push(make_request(id, 8, now)));  // no deadline
  }
  queue.close();

  SchedulerConfig config = scheduler_config(SchedPolicy::kBinned, 4);
  config.policy.allow_degrade = true;
  config.policy.degrade_slack_us = 1e12;  // any deadline-bearing request
  BatchScheduler scheduler(queue, config);

  std::size_t degraded_requests = 0, normal_requests = 0;
  while (const auto batch = scheduler.next_batch()) {
    for (const Request& request : batch->requests) {
      // Lane purity: every request matches its batch's lane.
      EXPECT_EQ(request.degraded, batch->degraded);
      (request.degraded ? degraded_requests : normal_requests) += 1;
    }
    EXPECT_TRUE(batch->shed.empty());
  }
  EXPECT_EQ(degraded_requests, 2u);
  EXPECT_EQ(normal_requests, 2u);
}

}  // namespace
}  // namespace haan::serve
