// Chunked prefill + incremental decode through the full serving stack:
// session-mode runs must reproduce the re-forward reference oracle bit for
// bit (checksums over fed rows, greedy token streams, full hidden states) for
// any prefill chunk size, worker count and pack mix; a closed queue must
// still drain live decode sessions to completion; max_new_tokens clamps to
// the model window; kAuto mode resolution follows decode demand and
// HAAN_PREFILL_CHUNK; phase metrics (TTFT, inter-token, prefill/decode rows,
// KV residency) and phase-tagged trace spans report the split.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/json_lite.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace haan::serve {
namespace {

ServerConfig decode_server(const std::string& norm) {
  ServerConfig config;
  config.model = model::tiny_test_model();
  config.norm = norm;
  config.workers = 2;
  config.queue_capacity = 16;
  config.scheduler.max_batch = 4;
  config.scheduler.max_wait = std::chrono::microseconds(200);
  config.mode = ExecMode::kChunked;
  config.prefill_chunk = 2;
  config.paced = false;
  config.keep_hidden = true;
  config.calibration.n_samples = 8;
  config.calibration.seq_len = 16;
  config.calibration.position_stride = 4;
  config.calibration.planner.min_gap = 4;
  return config;
}

/// Ragged prompts with per-request decode demand: lengths cycle {1, 7, 4, 2},
/// max_new_tokens cycles {3, 0, 5, 1} — mixing prefill-only requests into the
/// decode stream.
std::vector<Request> decode_workload(std::size_t n, std::size_t vocab) {
  const std::size_t lens[] = {1, 7, 4, 2};
  const std::size_t decode[] = {3, 0, 5, 1};
  common::Rng rng(31);
  std::vector<Request> workload;
  for (std::size_t i = 0; i < n; ++i) {
    Request request;
    request.id = i;
    request.tokens.resize(lens[i % 4]);
    for (auto& t : request.tokens) {
      t = static_cast<int>(rng.uniform_index(vocab));
    }
    request.max_new_tokens = decode[i % 4];
    workload.push_back(std::move(request));
  }
  return workload;
}

void expect_matches_reference(const ServeReport& run, const ServeReport& ref) {
  ASSERT_EQ(run.results.size(), ref.results.size());
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    ASSERT_EQ(run.results[i].id, ref.results[i].id);
    EXPECT_EQ(run.results[i].generated, ref.results[i].generated)
        << "request " << i;
    EXPECT_EQ(run.results[i].hidden_checksum, ref.results[i].hidden_checksum)
        << "request " << i;
    ASSERT_EQ(run.results[i].hidden.size(), ref.results[i].hidden.size())
        << "request " << i;
    for (std::size_t j = 0; j < run.results[i].hidden.size(); ++j) {
      ASSERT_EQ(run.results[i].hidden[j], ref.results[i].hidden[j])
          << "request " << i << " element " << j;
    }
  }
}

TEST(DecodeServe, ChunkedRunMatchesReferenceOracleForProviders) {
  for (const std::string norm : {"exact", "haan", "haan-int8"}) {
    Server server(decode_server(norm));
    const auto workload =
        decode_workload(16, server.config().model.vocab_size);
    const auto reference = server.run_reference(workload);
    // The oracle actually decoded something.
    std::size_t total_generated = 0;
    for (const auto& result : reference.results) {
      total_generated += result.generated.size();
    }
    ASSERT_GT(total_generated, 0u) << norm;

    const auto chunked = server.run(workload);
    expect_matches_reference(chunked, reference);
  }
}

TEST(DecodeServe, ChunkSizeAndWorkerCountDoNotChangeOutputs) {
  auto base = decode_server("haan");
  const auto workload = decode_workload(12, base.model.vocab_size);
  Server oracle(base);
  const auto reference = oracle.run_reference(workload);

  for (const std::size_t chunk : {0u, 1u, 3u}) {
    for (const std::size_t workers : {1u, 4u}) {
      auto config = base;
      config.prefill_chunk = chunk;
      config.workers = workers;
      Server server(config);
      const auto report = server.run(workload);
      ASSERT_EQ(report.results.size(), workload.size());
      expect_matches_reference(report, reference);
    }
  }
}

TEST(DecodeServe, ClosedQueueStillDrainsLiveDecodeSessions) {
  // Closed-loop feeding closes the queue as soon as the last request is
  // admitted — long decodes are then entirely post-close work. Every request
  // must still deliver its full token budget.
  auto config = decode_server("exact");
  config.workers = 2;
  config.scheduler.max_batch = 3;
  Server server(config);
  std::vector<Request> workload =
      decode_workload(6, config.model.vocab_size);
  for (auto& request : workload) request.max_new_tokens = 16;
  const auto report = server.run(workload);
  ASSERT_EQ(report.results.size(), workload.size());
  for (const auto& result : report.results) {
    EXPECT_EQ(result.generated.size(), 16u) << "request " << result.id;
    EXPECT_GT(result.ttft_us, 0.0);
  }
  expect_matches_reference(report, server.run_reference(workload));
}

TEST(DecodeServe, MaxNewTokensClampsToModelWindow) {
  auto config = decode_server("exact");
  Server server(config);
  const std::size_t max_seq = config.model.max_seq_len;
  std::vector<Request> workload =
      decode_workload(2, config.model.vocab_size);
  workload[0].tokens.resize(max_seq - 2, 1);
  workload[0].max_new_tokens = 1000;  // window leaves prompt+2 fed rows
  workload[1].max_new_tokens = 1000;
  const auto report = server.run(workload);
  ASSERT_EQ(report.results.size(), 2u);
  // Fed rows never exceed max_seq_len: prompt + (generated - 1) <= max_seq,
  // so the clamp is max_seq - prompt + 1.
  EXPECT_EQ(report.results[0].generated.size(), 3u);
  EXPECT_EQ(report.results[1].generated.size(),
            max_seq - workload[1].tokens.size() + 1);
  expect_matches_reference(report, server.run_reference(workload));
}

TEST(DecodeServe, AutoModeResolvesByDecodeDemandAndEnvironment) {
  // Pin the environment for the duration: this test asserts both sides of
  // the HAAN_PREFILL_CHUNK lever.
  const char* saved = std::getenv("HAAN_PREFILL_CHUNK");
  const std::string saved_value = saved == nullptr ? "" : saved;
  ::unsetenv("HAAN_PREFILL_CHUNK");

  auto config = decode_server("exact");
  config.mode = ExecMode::kAuto;
  Server server(config);
  const auto decode = decode_workload(4, config.model.vocab_size);
  std::vector<Request> prefill_only = decode;
  for (auto& request : prefill_only) request.max_new_tokens = 0;

  EXPECT_EQ(server.resolve_mode(decode), ExecMode::kChunked);
  EXPECT_EQ(server.resolve_mode(prefill_only), ExecMode::kMegaBatch);

  config.mega_batch = false;
  Server per_request(config);
  EXPECT_EQ(per_request.resolve_mode(prefill_only), ExecMode::kPerRequest);

  ::setenv("HAAN_PREFILL_CHUNK", "3", 1);
  EXPECT_EQ(server.resolve_mode(prefill_only), ExecMode::kChunked);
  ::unsetenv("HAAN_PREFILL_CHUNK");

  // Explicit modes always win over the environment and the workload.
  config.mode = ExecMode::kMegaBatch;
  Server pinned(config);
  ::setenv("HAAN_PREFILL_CHUNK", "3", 1);
  EXPECT_EQ(pinned.resolve_mode(prefill_only), ExecMode::kMegaBatch);
  ::unsetenv("HAAN_PREFILL_CHUNK");

  if (!saved_value.empty()) {
    ::setenv("HAAN_PREFILL_CHUNK", saved_value.c_str(), 1);
  }
}

TEST(DecodeServe, PhaseMetricsSeparateTtftAndInterToken) {
  Server server(decode_server("haan"));
  const auto workload = decode_workload(12, server.config().model.vocab_size);
  const auto report = server.run(workload);
  ASSERT_EQ(report.results.size(), workload.size());

  std::size_t prompt_rows = 0;
  std::size_t decode_rows = 0;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    prompt_rows += workload[i].tokens.size();
    const std::size_t generated = report.results[i].generated.size();
    decode_rows += generated == 0 ? 0 : generated - 1;
  }

  // One TTFT per request (prefill-only requests stamp it at prompt
  // completion); one inter-token gap per decoded token after the first.
  EXPECT_EQ(report.metrics.ttft.count, workload.size());
  EXPECT_EQ(report.metrics.intertoken.count, decode_rows);
  EXPECT_GT(report.metrics.ttft.p99_us, 0.0);

  // Exact phase row accounting: every fed row is prefill or decode.
  EXPECT_EQ(report.metrics.prefill_rows, prompt_rows);
  EXPECT_EQ(report.metrics.decode_rows, decode_rows);
  EXPECT_EQ(report.metrics.packed_rows, prompt_rows + decode_rows);
  EXPECT_GT(report.metrics.prefill_packs + report.metrics.mixed_packs, 0u);
  EXPECT_GT(report.metrics.decode_packs + report.metrics.mixed_packs, 0u);
  EXPECT_GT(report.metrics.decode_rows_per_pack(), 0.0);
  EXPECT_GT(report.metrics.max_kv_bytes, 0u);

  // Results carry per-request TTFT.
  for (const auto& result : report.results) {
    EXPECT_GT(result.ttft_us, 0.0) << "request " << result.id;
    EXPECT_LE(result.ttft_us, result.total_us) << "request " << result.id;
  }

  const std::string json = report.metrics.to_json().dump_pretty();
  for (const char* key :
       {"latency_ttft", "latency_intertoken", "prefill_rows", "decode_rows",
        "kv_bytes_resident", "max_kv_bytes", "decode_rows_per_pack"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  const std::string human = report.metrics.to_string();
  EXPECT_NE(human.find("ttft"), std::string::npos);
  EXPECT_NE(human.find("inter-token"), std::string::npos);
}

TEST(DecodeServe, ChunkedTraceTagsForwardSpansWithPhase) {
  obs::tracer().set_enabled(false);
  obs::tracer().reset();
  obs::tracer().set_ring_capacity(1 << 16);
  obs::tracer().set_enabled(true);

  auto config = decode_server("haan");
  config.workers = 1;
  Server server(config);
  std::vector<Request> workload =
      decode_workload(3, config.model.vocab_size);
  for (auto& request : workload) request.max_new_tokens = 4;
  server.run(workload);

  const auto parsed = common::Json::parse(obs::tracer().export_chrome_json());
  obs::tracer().set_enabled(false);
  obs::tracer().reset();
  ASSERT_TRUE(parsed.has_value());

  std::set<std::string> span_names;
  std::set<std::string> phases;
  for (const common::Json& event : parsed->find("traceEvents")->as_array()) {
    if (event.find("ph")->as_string() != "B") continue;
    const std::string& name = event.find("name")->as_string();
    span_names.insert(name);
    if (name == "forward") {
      const common::Json* args = event.find("args");
      ASSERT_NE(args, nullptr);
      const common::Json* phase = args->find("phase");
      ASSERT_NE(phase, nullptr) << "forward span missing phase arg";
      phases.insert(phase->as_string());
    }
  }
  // Session-mode lifecycle spans plus phase-tagged forwards: with decode
  // budgets past the prompt, pure decode steps must appear.
  for (const char* expected : {"pack-form", "pack", "forward", "complete"}) {
    EXPECT_TRUE(span_names.count(expected)) << "missing span " << expected;
  }
  EXPECT_TRUE(phases.count("decode")) << "no pure-decode forward traced";
  for (const std::string& phase : phases) {
    EXPECT_TRUE(phase == "prefill" || phase == "decode" || phase == "mixed")
        << phase;
  }
}

}  // namespace
}  // namespace haan::serve
