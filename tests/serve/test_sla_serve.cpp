// End-to-end SLA-scheduling tests: batch-formation policies must never touch
// numerics (bit-identity against the single-threaded reference oracle for
// every provider), and overload admission control must shed/degrade visibly
// and correctly (shed requests complete unserved, degraded requests carry the
// degrade provider's exact outputs).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/provider_factory.hpp"
#include "serve/server.hpp"

namespace haan::serve {
namespace {

WorkloadConfig ragged_workload(std::size_t n, const model::ModelConfig& model) {
  WorkloadConfig config;
  config.n_requests = n;
  config.rate_rps = 50000.0;  // effectively closed-loop even when paced
  config.length_model = LengthModel::kBimodal;
  config.min_prompt = 4;
  config.max_prompt = 12;
  config.long_fraction = 0.4;  // heavy length mix: policies really reorder
  config.vocab_size = model.vocab_size;
  config.priority_levels = 2;
  config.seed = 7;
  return config;
}

ServerConfig base_server(const std::string& norm, SchedPolicy policy) {
  ServerConfig config;
  config.model = model::tiny_test_model();
  config.norm = norm;
  config.workers = 4;
  config.queue_capacity = 16;
  config.scheduler.max_batch = 4;
  config.scheduler.max_wait = std::chrono::microseconds(200);
  config.scheduler.policy.policy = policy;
  config.scheduler.policy.bin_width = 8;
  config.paced = false;
  config.calibration.n_samples = 8;
  config.calibration.seq_len = 16;
  config.calibration.position_stride = 4;
  config.calibration.planner.min_gap = 4;
  return config;
}

/// Same server but reusing an already-computed skip plan (one calibration per
/// provider, shared across the policy variants).
ServerConfig with_preset_plan(ServerConfig config, const core::SkipPlan& plan) {
  config.calibrate = false;
  config.preset_plan = plan;
  return config;
}

TEST(SlaServe, PoliciesAreBitIdenticalToReferenceForEveryProvider) {
  for (const std::string& norm : core::norm_provider_names()) {
    Server fifo(base_server(norm, SchedPolicy::kFifo));
    const auto workload =
        generate_workload(ragged_workload(32, fifo.config().model));
    const auto reference = fifo.run_reference(workload);

    for (const auto policy :
         {SchedPolicy::kFifo, SchedPolicy::kBinned, SchedPolicy::kEdf}) {
      Server server(
          with_preset_plan(base_server(norm, policy), fifo.plan()));
      const auto report = server.run(workload);
      ASSERT_EQ(report.results.size(), reference.results.size());
      for (std::size_t i = 0; i < report.results.size(); ++i) {
        EXPECT_EQ(report.results[i].id, reference.results[i].id);
        EXPECT_EQ(report.results[i].hidden_checksum,
                  reference.results[i].hidden_checksum)
            << norm << "/" << to_string(policy) << " request " << i;
      }
    }
  }
}

TEST(SlaServe, ChunkedDecodeBitIdenticalUnderPolicies) {
  // The step scheduler's policy path: chunked prefill + incremental decode
  // with binned/EDF pack formation must still match the re-forward oracle.
  auto make_config = [](SchedPolicy policy) {
    ServerConfig config = base_server("haan", policy);
    config.mode = ExecMode::kChunked;
    config.prefill_chunk = 4;
    return config;
  };
  Server first(make_config(SchedPolicy::kBinned));
  auto workload_config = ragged_workload(16, first.config().model);
  workload_config.decode_model = DecodeModel::kFixed;
  workload_config.decode_tokens = 3;
  const auto workload = generate_workload(workload_config);
  const auto reference = first.run_reference(workload);

  for (const auto policy : {SchedPolicy::kBinned, SchedPolicy::kEdf}) {
    Server server(
        with_preset_plan(make_config(policy), first.plan()));
    const auto report = server.run(workload);
    ASSERT_EQ(report.results.size(), reference.results.size());
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      EXPECT_EQ(report.results[i].hidden_checksum,
                reference.results[i].hidden_checksum)
          << to_string(policy) << " request " << i;
      EXPECT_EQ(report.results[i].generated, reference.results[i].generated);
    }
  }
}

TEST(SlaServe, OverloadShedsDeadlineTrafficAndReportsIt) {
  ServerConfig config = base_server("haan", SchedPolicy::kEdf);
  config.scheduler.policy.allow_shed = true;  // shed blown deadlines
  Server server(config);

  auto workload = generate_workload(ragged_workload(24, config.model));
  // Odd ids carry an unmeetable deadline (1 ns): admission control must shed
  // them; even ids have no deadline and must all be served.
  for (auto& request : workload) {
    if (request.id % 2 == 1) request.deadline_us = 1e-3;
  }
  const auto report = server.run(workload);

  ASSERT_EQ(report.results.size(), workload.size());
  std::size_t served = 0, shed = 0;
  for (const auto& result : report.results) {
    if (result.shed) {
      EXPECT_EQ(result.id % 2, 1u);
      EXPECT_TRUE(result.deadline_missed);
      EXPECT_EQ(result.hidden_checksum, 0u);  // no forward ran
      ++shed;
    } else {
      EXPECT_EQ(result.id % 2, 0u);
      ++served;
    }
  }
  EXPECT_EQ(served + shed, workload.size());
  EXPECT_EQ(served, 12u);
  EXPECT_EQ(shed, 12u);
  EXPECT_EQ(report.metrics.shed_requests, shed);
  EXPECT_EQ(report.metrics.completed, served);  // completed counts SERVED only
  EXPECT_EQ(report.metrics.deadline_missed_requests, shed);
}

TEST(SlaServe, DegradedRequestsMatchDegradeProviderReference) {
  // Force every deadline-bearing request through the degrade lane, then check
  // its outputs are exactly what the degrade provider computes.
  ServerConfig config = base_server("haan", SchedPolicy::kBinned);
  config.degrade_norm = "haan-full";
  config.scheduler.policy.allow_degrade = true;
  config.scheduler.policy.degrade_slack_us = 1e12;
  Server server(config);

  auto workload = generate_workload(ragged_workload(24, config.model));
  for (auto& request : workload) request.deadline_us = 1e9;  // never missed

  // Reference: the same workload run single-threaded on the DEGRADE provider.
  ServerConfig reference_config =
      with_preset_plan(base_server("haan-full", SchedPolicy::kFifo),
                       server.plan());
  Server reference_server(reference_config);
  const auto reference = reference_server.run_reference(workload);

  const auto report = server.run(workload);
  ASSERT_EQ(report.results.size(), reference.results.size());
  std::size_t degraded = 0;
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    EXPECT_TRUE(report.results[i].degraded);
    EXPECT_FALSE(report.results[i].shed);
    EXPECT_EQ(report.results[i].hidden_checksum,
              reference.results[i].hidden_checksum)
        << "request " << i;
    degraded += report.results[i].degraded ? 1 : 0;
  }
  EXPECT_EQ(report.metrics.degraded_requests, degraded);
  EXPECT_EQ(report.metrics.completed, workload.size());  // degraded = served
  EXPECT_EQ(report.metrics.shed_requests, 0u);
}

TEST(SlaServe, DeadlineMissesAreCountedWithoutSheddingOrDegrading) {
  // No admission control: requests with blown deadlines still get served,
  // and the misses are counted per result and in aggregate.
  ServerConfig config = base_server("haan", SchedPolicy::kEdf);
  Server server(config);

  auto workload = generate_workload(ragged_workload(16, config.model));
  for (auto& request : workload) request.deadline_us = 1e-3;  // 1 ns budget
  const auto report = server.run(workload);

  ASSERT_EQ(report.results.size(), workload.size());
  for (const auto& result : report.results) {
    EXPECT_FALSE(result.shed);
    EXPECT_FALSE(result.degraded);
    EXPECT_TRUE(result.deadline_missed);
  }
  EXPECT_EQ(report.metrics.completed, workload.size());
  EXPECT_EQ(report.metrics.deadline_missed_requests, workload.size());
  EXPECT_EQ(report.metrics.shed_requests, 0u);
  EXPECT_EQ(report.metrics.degraded_requests, 0u);
}

TEST(SlaServe, PerPriorityMetricsPartitionTheTraffic) {
  ServerConfig config = base_server("haan", SchedPolicy::kEdf);
  Server server(config);
  const auto workload =
      generate_workload(ragged_workload(24, config.model));  // 2 classes

  const auto report = server.run(workload);
  ASSERT_EQ(report.metrics.per_priority.size(), 2u);
  std::size_t counted = 0;
  for (const auto& [priority, summary] : report.metrics.per_priority) {
    EXPECT_TRUE(priority == 0 || priority == 1);
    counted += summary.total.count;
    EXPECT_EQ(summary.shed, 0u);
    EXPECT_EQ(summary.degraded, 0u);
  }
  EXPECT_EQ(counted, workload.size());
}

}  // namespace
}  // namespace haan::serve
