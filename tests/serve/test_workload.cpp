#include "serve/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace haan::serve {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig config;
  config.n_requests = 400;
  config.rate_rps = 1000.0;
  config.min_prompt = 4;
  config.max_prompt = 16;
  config.vocab_size = 64;
  config.seed = 11;
  return config;
}

TEST(Workload, DeterministicUnderFixedSeed) {
  const auto a = generate_workload(base_config());
  const auto b = generate_workload(base_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].tokens, b[i].tokens);
    EXPECT_DOUBLE_EQ(a[i].arrival_us, b[i].arrival_us);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  auto config = base_config();
  const auto a = generate_workload(config);
  config.seed = 12;
  const auto b = generate_workload(config);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size() && !any_different; ++i) {
    any_different = a[i].tokens != b[i].tokens ||
                    a[i].arrival_us != b[i].arrival_us;
  }
  EXPECT_TRUE(any_different);
}

TEST(Workload, IdsSequentialArrivalsMonotone) {
  const auto requests = generate_workload(base_config());
  ASSERT_EQ(requests.size(), 400u);
  double last = 0.0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, i);
    EXPECT_GE(requests[i].arrival_us, last);
    last = requests[i].arrival_us;
  }
}

TEST(Workload, PromptLengthsAndTokensWithinBounds) {
  const auto config = base_config();
  for (const auto& request : generate_workload(config)) {
    EXPECT_GE(request.tokens.size(), config.min_prompt);
    EXPECT_LE(request.tokens.size(), config.max_prompt);
    for (const int token : request.tokens) {
      EXPECT_GE(token, 0);
      EXPECT_LT(token, static_cast<int>(config.vocab_size));
    }
  }
}

TEST(Workload, FixedLengthModelUsesMinPrompt) {
  auto config = base_config();
  config.length_model = LengthModel::kFixed;
  for (const auto& request : generate_workload(config)) {
    EXPECT_EQ(request.tokens.size(), config.min_prompt);
  }
}

TEST(Workload, BimodalLengthsAreTwoPoint) {
  auto config = base_config();
  config.length_model = LengthModel::kBimodal;
  config.long_fraction = 0.3;
  std::size_t longs = 0;
  const auto requests = generate_workload(config);
  for (const auto& request : requests) {
    const std::size_t len = request.tokens.size();
    EXPECT_TRUE(len == config.min_prompt || len == config.max_prompt);
    if (len == config.max_prompt) ++longs;
  }
  // ~30% of 400; generous band.
  EXPECT_GT(longs, 60u);
  EXPECT_LT(longs, 180u);
}

TEST(Workload, SteadyMeanRateNearConfigured) {
  auto config = base_config();
  config.n_requests = 2000;
  const auto requests = generate_workload(config);
  const double span_s = requests.back().arrival_us / 1e6;
  const double rate = static_cast<double>(requests.size()) / span_s;
  EXPECT_NEAR(rate, config.rate_rps, config.rate_rps * 0.15);
}

TEST(Workload, BurstyMeanRateMatchesConfigured) {
  // Regression: the raw rate*f / rate/f square wave has mean inter-arrival
  // (1/f + f)/2 / rate — 4x the configured gap at f=8 — so bursty runs
  // under-delivered the offered load. The phases are now normalized so the
  // empirical mean rate equals rate_rps.
  auto config = base_config();
  config.scenario = Scenario::kBursty;
  config.burst_factor = 8.0;
  config.n_requests = 6000;
  const auto requests = generate_workload(config);
  const double span_s = requests.back().arrival_us / 1e6;
  const double rate = static_cast<double>(requests.size()) / span_s;
  EXPECT_NEAR(rate, config.rate_rps, config.rate_rps * 0.15);
}

TEST(Workload, BurstyPeakTroughRatioIsBurstFactorSquared) {
  auto config = base_config();
  config.scenario = Scenario::kBursty;
  config.burst_factor = 4.0;
  config.burst_period = 500;
  config.n_requests = 2000;  // exactly two peak and two trough phases
  const auto requests = generate_workload(config);
  const auto phase_span = [&](std::size_t begin, std::size_t end) {
    return requests[end - 1].arrival_us - requests[begin].arrival_us;
  };
  // Peak phases (requests 0-499, 1000-1499) run ~f^2 denser than trough
  // phases (500-999, 1500-1999); generous band for Poisson noise.
  const double peak = phase_span(0, 500) + phase_span(1000, 1500);
  const double trough = phase_span(500, 1000) + phase_span(1500, 2000);
  EXPECT_GT(trough / peak, 8.0);
  EXPECT_LT(trough / peak, 32.0);
}

TEST(Workload, RampEndsDenserThanItStarts) {
  auto config = base_config();
  config.scenario = Scenario::kRamp;
  config.n_requests = 1000;
  const auto requests = generate_workload(config);
  const std::size_t half = requests.size() / 2;
  const double first_half = requests[half - 1].arrival_us;
  const double second_half = requests.back().arrival_us - first_half;
  // Rate ramps 0.25x -> 2x: the first half of the requests takes much longer.
  EXPECT_GT(first_half, second_half * 1.5);
}

TEST(Workload, BurstyHasHigherInterarrivalVarianceThanSteady) {
  auto config = base_config();
  config.n_requests = 1024;
  const auto steady = generate_workload(config);
  config.scenario = Scenario::kBursty;
  config.burst_factor = 8.0;
  const auto bursty = generate_workload(config);

  const auto interarrival_cv2 = [](const std::vector<Request>& requests) {
    double mean = 0.0, m2 = 0.0;
    const std::size_t n = requests.size() - 1;
    std::vector<double> gaps(n);
    for (std::size_t i = 0; i < n; ++i) {
      gaps[i] = requests[i + 1].arrival_us - requests[i].arrival_us;
      mean += gaps[i];
    }
    mean /= static_cast<double>(n);
    for (const double g : gaps) m2 += (g - mean) * (g - mean);
    return m2 / static_cast<double>(n) / (mean * mean);  // squared CV
  };
  // Exponential gaps have CV^2 ~ 1; the 8x square wave inflates it well past.
  EXPECT_GT(interarrival_cv2(bursty), interarrival_cv2(steady) * 1.5);
}

TEST(Workload, ScenarioAndLengthModelStringsRoundTrip) {
  for (const auto scenario :
       {Scenario::kSteady, Scenario::kBursty, Scenario::kRamp,
        Scenario::kDiurnal, Scenario::kOverload}) {
    EXPECT_EQ(scenario_from_string(to_string(scenario)), scenario);
  }
  for (const auto model :
       {LengthModel::kFixed, LengthModel::kUniform, LengthModel::kBimodal}) {
    EXPECT_EQ(length_model_from_string(to_string(model)), model);
  }
  for (const auto model : {DecodeModel::kNone, DecodeModel::kFixed,
                           DecodeModel::kGeometric}) {
    EXPECT_EQ(decode_model_from_string(to_string(model)), model);
  }
  EXPECT_FALSE(try_decode_model_from_string("bogus").has_value());
}

TEST(Workload, DefaultDecodeModelLeavesRequestsPrefillOnly) {
  for (const auto& request : generate_workload(base_config())) {
    EXPECT_EQ(request.max_new_tokens, 0u);
  }
}

TEST(Workload, EnablingDecodeDoesNotReshuffleOtherStreams) {
  // The decode Rng forks AFTER arrival/length/token, so a seed's arrivals,
  // prompts and token contents are bit-identical with decode on or off.
  const auto prefill_only = generate_workload(base_config());
  auto config = base_config();
  config.decode_model = DecodeModel::kGeometric;
  config.decode_tokens = 6;
  const auto with_decode = generate_workload(config);
  ASSERT_EQ(prefill_only.size(), with_decode.size());
  for (std::size_t i = 0; i < prefill_only.size(); ++i) {
    EXPECT_EQ(prefill_only[i].tokens, with_decode[i].tokens);
    EXPECT_DOUBLE_EQ(prefill_only[i].arrival_us, with_decode[i].arrival_us);
    EXPECT_EQ(prefill_only[i].max_new_tokens, 0u);
  }
}

TEST(Workload, FixedDecodeModelAssignsConstantBudget) {
  auto config = base_config();
  config.decode_model = DecodeModel::kFixed;
  config.decode_tokens = 5;
  for (const auto& request : generate_workload(config)) {
    EXPECT_EQ(request.max_new_tokens, 5u);
  }
}

TEST(Workload, GeometricDecodeLengthsHaveConfiguredMeanAndCap) {
  auto config = base_config();
  config.n_requests = 4000;
  config.decode_model = DecodeModel::kGeometric;
  config.decode_tokens = 8;
  config.max_decode = 64;
  double sum = 0.0;
  std::size_t at_least_two = 0;
  for (const auto& request : generate_workload(config)) {
    EXPECT_GE(request.max_new_tokens, 1u);
    EXPECT_LE(request.max_new_tokens, config.max_decode);
    sum += static_cast<double>(request.max_new_tokens);
    if (request.max_new_tokens >= 2) ++at_least_two;
  }
  const double mean = sum / static_cast<double>(config.n_requests);
  EXPECT_NEAR(mean, 8.0, 1.0);  // generous band for the cap's truncation
  EXPECT_GT(at_least_two, config.n_requests / 2);  // genuinely dispersed
}

TEST(Workload, DiurnalIsDeterministicAndConservesMeanRate) {
  auto config = base_config();
  config.scenario = Scenario::kDiurnal;
  config.diurnal_amplitude = 0.8;
  config.diurnal_cycles = 2.0;  // whole cycles integrate to the mean
  config.n_requests = 4000;
  const auto a = generate_workload(config);
  const auto b = generate_workload(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_us, b[i].arrival_us);
  }
  const double span_s = a.back().arrival_us / 1e6;
  const double rate = static_cast<double>(a.size()) / span_s;
  EXPECT_NEAR(rate, config.rate_rps, config.rate_rps * 0.2);
}

TEST(Workload, DiurnalPeaksAreDenserThanTroughs) {
  auto config = base_config();
  config.scenario = Scenario::kDiurnal;
  config.diurnal_amplitude = 0.9;
  config.diurnal_cycles = 1.0;
  config.n_requests = 4000;
  const auto requests = generate_workload(config);
  // One cycle: peak rate around t = 0.25 (sin = 1), trough around t = 0.75
  // (sin = -1). Compare the spans of same-size windows around each.
  const auto window_span = [&](double center) {
    const std::size_t mid =
        static_cast<std::size_t>(center * static_cast<double>(requests.size()));
    return requests[mid + 200].arrival_us - requests[mid - 200].arrival_us;
  };
  EXPECT_GT(window_span(0.75) / window_span(0.25), 3.0);
}

TEST(Workload, OverloadSpikeIsDenserThanShoulders) {
  auto config = base_config();
  config.scenario = Scenario::kOverload;
  config.overload_factor = 8.0;
  config.n_requests = 4000;
  const auto requests = generate_workload(config);
  const std::size_t n = requests.size();
  // Spike covers the middle [0.3, 0.7) of the stream.
  const double before = requests[n * 3 / 10].arrival_us;
  const double spike =
      requests[n * 7 / 10 - 1].arrival_us - requests[n * 3 / 10].arrival_us;
  const double after =
      requests[n - 1].arrival_us - requests[n * 7 / 10 - 1].arrival_us;
  // Both shoulders carry 3/4 as many requests as the spike at 1/8 the rate.
  EXPECT_GT(before / spike, 3.0);
  EXPECT_GT(after / spike, 3.0);
}

TEST(Workload, SlaKnobsDoNotReshuffleOtherStreams) {
  // The SLA Rng forks AFTER arrival/length/token/decode, so turning on
  // tenants/priorities/deadlines (without rate caps) leaves the rest of the
  // trace bit-identical.
  auto config = base_config();
  config.decode_model = DecodeModel::kGeometric;
  const auto plain = generate_workload(config);
  config.tenants = 4;
  config.priority_levels = 2;
  config.deadline_us = 5000.0;
  const auto with_sla = generate_workload(config);
  ASSERT_EQ(plain.size(), with_sla.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].tokens, with_sla[i].tokens);
    EXPECT_DOUBLE_EQ(plain[i].arrival_us, with_sla[i].arrival_us);
    EXPECT_EQ(plain[i].max_new_tokens, with_sla[i].max_new_tokens);
    EXPECT_DOUBLE_EQ(with_sla[i].deadline_us, 5000.0);
  }
}

TEST(Workload, TenantsAndPrioritiesAreAssignedWithinBounds) {
  auto config = base_config();
  config.tenants = 4;
  config.priority_levels = 2;
  std::vector<std::size_t> per_tenant(config.tenants, 0);
  for (const auto& request : generate_workload(config)) {
    ASSERT_LT(request.tenant, config.tenants);
    ASSERT_GE(request.priority, 0);
    ASSERT_LT(request.priority, static_cast<int>(config.priority_levels));
    // Multi-tenant mixes give each tenant a stable class.
    EXPECT_EQ(request.priority,
              static_cast<int>(request.tenant % config.priority_levels));
    ++per_tenant[request.tenant];
  }
  // Uniform tenant draw: every tenant sees a healthy share of 400 requests.
  for (const std::size_t count : per_tenant) EXPECT_GT(count, 50u);
}

TEST(Workload, SingleTenantPrioritiesAreDispersed) {
  auto config = base_config();
  config.priority_levels = 3;
  std::vector<std::size_t> per_class(config.priority_levels, 0);
  for (const auto& request : generate_workload(config)) {
    ASSERT_GE(request.priority, 0);
    ASSERT_LT(request.priority, 3);
    ++per_class[static_cast<std::size_t>(request.priority)];
  }
  for (const std::size_t count : per_class) EXPECT_GT(count, 60u);
}

TEST(Workload, PerTenantRateLimitIsHonored) {
  auto config = base_config();
  config.rate_rps = 10000.0;  // offered well above the caps
  config.tenants = 4;
  config.tenant_rate_rps = 500.0;  // min gap 2000 us per tenant
  config.n_requests = 800;
  const auto requests = generate_workload(config);

  // Trace contract survives the re-sort: ids sequential, arrivals monotone.
  double last = 0.0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, i);
    EXPECT_GE(requests[i].arrival_us, last);
    last = requests[i].arrival_us;
  }

  // Every tenant's consecutive arrivals are >= the token-bucket gap.
  const double min_gap_us = 1e6 / config.tenant_rate_rps;
  std::vector<double> last_arrival(config.tenants, -1e18);
  for (const auto& request : requests) {
    const double gap = request.arrival_us - last_arrival[request.tenant];
    EXPECT_GE(gap, min_gap_us * 0.999);  // float tolerance
    last_arrival[request.tenant] = request.arrival_us;
  }
}

TEST(Workload, UncappedTenantsKeepPoissonArrivals) {
  // tenant_rate_rps = 0: multi-tenancy must not perturb the arrival process.
  auto config = base_config();
  const auto plain = generate_workload(config);
  config.tenants = 4;
  const auto tenanted = generate_workload(config);
  ASSERT_EQ(plain.size(), tenanted.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain[i].arrival_us, tenanted[i].arrival_us);
    EXPECT_EQ(plain[i].id, tenanted[i].id);
  }
}

TEST(Workload, GeometricDecodeRespectsTightCap) {
  auto config = base_config();
  config.decode_model = DecodeModel::kGeometric;
  config.decode_tokens = 16;
  config.max_decode = 4;
  for (const auto& request : generate_workload(config)) {
    EXPECT_GE(request.max_new_tokens, 1u);
    EXPECT_LE(request.max_new_tokens, 4u);
  }
}

}  // namespace
}  // namespace haan::serve
