#include "serve/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace haan::serve {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig config;
  config.n_requests = 400;
  config.rate_rps = 1000.0;
  config.min_prompt = 4;
  config.max_prompt = 16;
  config.vocab_size = 64;
  config.seed = 11;
  return config;
}

TEST(Workload, DeterministicUnderFixedSeed) {
  const auto a = generate_workload(base_config());
  const auto b = generate_workload(base_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].tokens, b[i].tokens);
    EXPECT_DOUBLE_EQ(a[i].arrival_us, b[i].arrival_us);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  auto config = base_config();
  const auto a = generate_workload(config);
  config.seed = 12;
  const auto b = generate_workload(config);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size() && !any_different; ++i) {
    any_different = a[i].tokens != b[i].tokens ||
                    a[i].arrival_us != b[i].arrival_us;
  }
  EXPECT_TRUE(any_different);
}

TEST(Workload, IdsSequentialArrivalsMonotone) {
  const auto requests = generate_workload(base_config());
  ASSERT_EQ(requests.size(), 400u);
  double last = 0.0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, i);
    EXPECT_GE(requests[i].arrival_us, last);
    last = requests[i].arrival_us;
  }
}

TEST(Workload, PromptLengthsAndTokensWithinBounds) {
  const auto config = base_config();
  for (const auto& request : generate_workload(config)) {
    EXPECT_GE(request.tokens.size(), config.min_prompt);
    EXPECT_LE(request.tokens.size(), config.max_prompt);
    for (const int token : request.tokens) {
      EXPECT_GE(token, 0);
      EXPECT_LT(token, static_cast<int>(config.vocab_size));
    }
  }
}

TEST(Workload, FixedLengthModelUsesMinPrompt) {
  auto config = base_config();
  config.length_model = LengthModel::kFixed;
  for (const auto& request : generate_workload(config)) {
    EXPECT_EQ(request.tokens.size(), config.min_prompt);
  }
}

TEST(Workload, BimodalLengthsAreTwoPoint) {
  auto config = base_config();
  config.length_model = LengthModel::kBimodal;
  config.long_fraction = 0.3;
  std::size_t longs = 0;
  const auto requests = generate_workload(config);
  for (const auto& request : requests) {
    const std::size_t len = request.tokens.size();
    EXPECT_TRUE(len == config.min_prompt || len == config.max_prompt);
    if (len == config.max_prompt) ++longs;
  }
  // ~30% of 400; generous band.
  EXPECT_GT(longs, 60u);
  EXPECT_LT(longs, 180u);
}

TEST(Workload, SteadyMeanRateNearConfigured) {
  auto config = base_config();
  config.n_requests = 2000;
  const auto requests = generate_workload(config);
  const double span_s = requests.back().arrival_us / 1e6;
  const double rate = static_cast<double>(requests.size()) / span_s;
  EXPECT_NEAR(rate, config.rate_rps, config.rate_rps * 0.15);
}

TEST(Workload, BurstyMeanRateMatchesConfigured) {
  // Regression: the raw rate*f / rate/f square wave has mean inter-arrival
  // (1/f + f)/2 / rate — 4x the configured gap at f=8 — so bursty runs
  // under-delivered the offered load. The phases are now normalized so the
  // empirical mean rate equals rate_rps.
  auto config = base_config();
  config.scenario = Scenario::kBursty;
  config.burst_factor = 8.0;
  config.n_requests = 6000;
  const auto requests = generate_workload(config);
  const double span_s = requests.back().arrival_us / 1e6;
  const double rate = static_cast<double>(requests.size()) / span_s;
  EXPECT_NEAR(rate, config.rate_rps, config.rate_rps * 0.15);
}

TEST(Workload, BurstyPeakTroughRatioIsBurstFactorSquared) {
  auto config = base_config();
  config.scenario = Scenario::kBursty;
  config.burst_factor = 4.0;
  config.burst_period = 500;
  config.n_requests = 2000;  // exactly two peak and two trough phases
  const auto requests = generate_workload(config);
  const auto phase_span = [&](std::size_t begin, std::size_t end) {
    return requests[end - 1].arrival_us - requests[begin].arrival_us;
  };
  // Peak phases (requests 0-499, 1000-1499) run ~f^2 denser than trough
  // phases (500-999, 1500-1999); generous band for Poisson noise.
  const double peak = phase_span(0, 500) + phase_span(1000, 1500);
  const double trough = phase_span(500, 1000) + phase_span(1500, 2000);
  EXPECT_GT(trough / peak, 8.0);
  EXPECT_LT(trough / peak, 32.0);
}

TEST(Workload, RampEndsDenserThanItStarts) {
  auto config = base_config();
  config.scenario = Scenario::kRamp;
  config.n_requests = 1000;
  const auto requests = generate_workload(config);
  const std::size_t half = requests.size() / 2;
  const double first_half = requests[half - 1].arrival_us;
  const double second_half = requests.back().arrival_us - first_half;
  // Rate ramps 0.25x -> 2x: the first half of the requests takes much longer.
  EXPECT_GT(first_half, second_half * 1.5);
}

TEST(Workload, BurstyHasHigherInterarrivalVarianceThanSteady) {
  auto config = base_config();
  config.n_requests = 1024;
  const auto steady = generate_workload(config);
  config.scenario = Scenario::kBursty;
  config.burst_factor = 8.0;
  const auto bursty = generate_workload(config);

  const auto interarrival_cv2 = [](const std::vector<Request>& requests) {
    double mean = 0.0, m2 = 0.0;
    const std::size_t n = requests.size() - 1;
    std::vector<double> gaps(n);
    for (std::size_t i = 0; i < n; ++i) {
      gaps[i] = requests[i + 1].arrival_us - requests[i].arrival_us;
      mean += gaps[i];
    }
    mean /= static_cast<double>(n);
    for (const double g : gaps) m2 += (g - mean) * (g - mean);
    return m2 / static_cast<double>(n) / (mean * mean);  // squared CV
  };
  // Exponential gaps have CV^2 ~ 1; the 8x square wave inflates it well past.
  EXPECT_GT(interarrival_cv2(bursty), interarrival_cv2(steady) * 1.5);
}

TEST(Workload, ScenarioAndLengthModelStringsRoundTrip) {
  for (const auto scenario :
       {Scenario::kSteady, Scenario::kBursty, Scenario::kRamp}) {
    EXPECT_EQ(scenario_from_string(to_string(scenario)), scenario);
  }
  for (const auto model :
       {LengthModel::kFixed, LengthModel::kUniform, LengthModel::kBimodal}) {
    EXPECT_EQ(length_model_from_string(to_string(model)), model);
  }
  for (const auto model : {DecodeModel::kNone, DecodeModel::kFixed,
                           DecodeModel::kGeometric}) {
    EXPECT_EQ(decode_model_from_string(to_string(model)), model);
  }
  EXPECT_FALSE(try_decode_model_from_string("bogus").has_value());
}

TEST(Workload, DefaultDecodeModelLeavesRequestsPrefillOnly) {
  for (const auto& request : generate_workload(base_config())) {
    EXPECT_EQ(request.max_new_tokens, 0u);
  }
}

TEST(Workload, EnablingDecodeDoesNotReshuffleOtherStreams) {
  // The decode Rng forks AFTER arrival/length/token, so a seed's arrivals,
  // prompts and token contents are bit-identical with decode on or off.
  const auto prefill_only = generate_workload(base_config());
  auto config = base_config();
  config.decode_model = DecodeModel::kGeometric;
  config.decode_tokens = 6;
  const auto with_decode = generate_workload(config);
  ASSERT_EQ(prefill_only.size(), with_decode.size());
  for (std::size_t i = 0; i < prefill_only.size(); ++i) {
    EXPECT_EQ(prefill_only[i].tokens, with_decode[i].tokens);
    EXPECT_DOUBLE_EQ(prefill_only[i].arrival_us, with_decode[i].arrival_us);
    EXPECT_EQ(prefill_only[i].max_new_tokens, 0u);
  }
}

TEST(Workload, FixedDecodeModelAssignsConstantBudget) {
  auto config = base_config();
  config.decode_model = DecodeModel::kFixed;
  config.decode_tokens = 5;
  for (const auto& request : generate_workload(config)) {
    EXPECT_EQ(request.max_new_tokens, 5u);
  }
}

TEST(Workload, GeometricDecodeLengthsHaveConfiguredMeanAndCap) {
  auto config = base_config();
  config.n_requests = 4000;
  config.decode_model = DecodeModel::kGeometric;
  config.decode_tokens = 8;
  config.max_decode = 64;
  double sum = 0.0;
  std::size_t at_least_two = 0;
  for (const auto& request : generate_workload(config)) {
    EXPECT_GE(request.max_new_tokens, 1u);
    EXPECT_LE(request.max_new_tokens, config.max_decode);
    sum += static_cast<double>(request.max_new_tokens);
    if (request.max_new_tokens >= 2) ++at_least_two;
  }
  const double mean = sum / static_cast<double>(config.n_requests);
  EXPECT_NEAR(mean, 8.0, 1.0);  // generous band for the cap's truncation
  EXPECT_GT(at_least_two, config.n_requests / 2);  // genuinely dispersed
}

TEST(Workload, GeometricDecodeRespectsTightCap) {
  auto config = base_config();
  config.decode_model = DecodeModel::kGeometric;
  config.decode_tokens = 16;
  config.max_decode = 4;
  for (const auto& request : generate_workload(config)) {
    EXPECT_GE(request.max_new_tokens, 1u);
    EXPECT_LE(request.max_new_tokens, 4u);
  }
}

}  // namespace
}  // namespace haan::serve
