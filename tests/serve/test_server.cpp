#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <set>

namespace haan::serve {
namespace {

WorkloadConfig small_workload(std::size_t n, const model::ModelConfig& model) {
  WorkloadConfig config;
  config.n_requests = n;
  config.rate_rps = 50000.0;  // effectively closed-loop even when paced
  config.min_prompt = 4;
  config.max_prompt = 12;
  config.vocab_size = model.vocab_size;
  config.seed = 3;
  return config;
}

ServerConfig tiny_server(const std::string& norm, std::size_t workers) {
  ServerConfig config;
  config.model = model::tiny_test_model();
  config.norm = norm;
  config.workers = workers;
  config.queue_capacity = 16;
  config.scheduler.max_batch = 4;
  config.scheduler.max_wait = std::chrono::microseconds(200);
  config.paced = false;
  config.keep_hidden = true;
  config.calibration.n_samples = 8;
  config.calibration.seq_len = 16;
  config.calibration.position_stride = 4;
  config.calibration.planner.min_gap = 4;
  return config;
}

TEST(Server, CompletesEveryRequestExactlyOnce) {
  Server server(tiny_server("exact", 4));
  const auto workload = generate_workload(small_workload(40, server.config().model));
  const auto report = server.run(workload);

  ASSERT_EQ(report.results.size(), 40u);
  ASSERT_EQ(report.metrics.completed, 40u);
  std::set<std::uint64_t> ids;
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    EXPECT_EQ(report.results[i].id, i);  // sorted, no gaps, no duplicates
    ids.insert(report.results[i].id);
  }
  EXPECT_EQ(ids.size(), 40u);
  EXPECT_GT(report.metrics.throughput_rps, 0.0);
  EXPECT_GE(report.metrics.batches, 10u);  // 40 requests, max_batch 4
  EXPECT_LE(report.metrics.max_batch_size, 4u);
}

TEST(Server, MultiWorkerBitIdenticalToSingleThreadedReference) {
  Server server(tiny_server("haan", 4));
  const auto workload = generate_workload(small_workload(48, server.config().model));

  const auto reference = server.run_reference(workload);
  const auto concurrent = server.run(workload);

  ASSERT_EQ(concurrent.results.size(), reference.results.size());
  for (std::size_t i = 0; i < concurrent.results.size(); ++i) {
    EXPECT_EQ(concurrent.results[i].id, reference.results[i].id);
    EXPECT_EQ(concurrent.results[i].hidden_checksum,
              reference.results[i].hidden_checksum)
        << "request " << i;
    // Full bit-for-bit hidden-state comparison, not just checksums.
    ASSERT_EQ(concurrent.results[i].hidden.size(), reference.results[i].hidden.size());
    for (std::size_t j = 0; j < concurrent.results[i].hidden.size(); ++j) {
      ASSERT_EQ(concurrent.results[i].hidden[j], reference.results[i].hidden[j])
          << "request " << i << " element " << j;
    }
  }
}

TEST(Server, AggregatedHaanCountersMatchReference) {
  Server server(tiny_server("haan", 4));
  const auto workload = generate_workload(small_workload(32, server.config().model));

  const auto reference = server.run_reference(workload);
  const auto concurrent = server.run(workload);

  EXPECT_EQ(concurrent.metrics.norm.norm_calls, reference.metrics.norm.norm_calls);
  EXPECT_EQ(concurrent.metrics.norm.isd_computed,
            reference.metrics.norm.isd_computed);
  EXPECT_EQ(concurrent.metrics.norm.isd_predicted,
            reference.metrics.norm.isd_predicted);
  EXPECT_EQ(concurrent.metrics.norm.elements_read,
            reference.metrics.norm.elements_read);
  EXPECT_GT(concurrent.metrics.norm.norm_calls, 0u);
}

TEST(Server, WorkerCountDoesNotChangeOutputs) {
  const auto workload_config =
      small_workload(24, tiny_server("haan", 1).model);
  const auto workload = generate_workload(workload_config);

  Server one(tiny_server("haan", 1));
  Server four(tiny_server("haan", 4));
  const auto r1 = one.run(workload);
  const auto r4 = four.run(workload);

  ASSERT_EQ(r1.results.size(), r4.results.size());
  for (std::size_t i = 0; i < r1.results.size(); ++i) {
    EXPECT_EQ(r1.results[i].hidden_checksum, r4.results[i].hidden_checksum);
  }
  EXPECT_EQ(r1.metrics.norm.isd_predicted, r4.metrics.norm.isd_predicted);
}

TEST(Server, SkipPlanActiveOnDeepModel) {
  // The GPT2-117M surrogate (25 norm layers) has the log-linear ISD tail
  // Algorithm 1 targets; calibration must find an enabled plan and the
  // runtime must actually predict ISDs inside it.
  ServerConfig config;
  config.model = model::gpt2_117m_surrogate(32);
  config.norm = "haan";
  config.workers = 2;
  config.paced = false;
  config.scheduler.max_batch = 4;
  config.scheduler.max_wait = std::chrono::microseconds(200);
  config.calibration.n_samples = 4;
  config.calibration.seq_len = 12;
  config.calibration.position_stride = 4;
  Server server(config);
  EXPECT_TRUE(server.plan().enabled);

  const auto workload = generate_workload(small_workload(12, config.model));
  const auto report = server.run(workload);
  EXPECT_EQ(report.results.size(), 12u);
  EXPECT_GT(report.metrics.norm.isd_predicted, 0u);
  EXPECT_EQ(report.metrics.norm.isd_predicted,
            server.run_reference(workload).metrics.norm.isd_predicted);
}

TEST(Server, ExactProviderReportsZeroNormCounters) {
  Server server(tiny_server("exact", 2));
  const auto workload = generate_workload(small_workload(8, server.config().model));
  const auto report = server.run(workload);
  EXPECT_EQ(report.metrics.norm.norm_calls, 0u);  // exact has no counters
}

TEST(Server, PacedRunHonorsArrivalSpacing) {
  auto config = tiny_server("exact", 2);
  config.paced = true;
  Server server(config);

  auto workload_config = small_workload(10, config.model);
  workload_config.rate_rps = 2000.0;  // ~5 ms expected span
  const auto workload = generate_workload(workload_config);
  const auto report = server.run(workload);
  // Wall clock must cover at least the last arrival offset.
  EXPECT_GE(report.metrics.wall_us, workload.back().arrival_us);
}

TEST(Server, LatencyBreakdownIsConsistent) {
  Server server(tiny_server("haan", 2));
  const auto workload = generate_workload(small_workload(16, server.config().model));
  const auto report = server.run(workload);
  for (const auto& result : report.results) {
    EXPECT_GE(result.total_us, result.compute_us);
    EXPECT_GE(result.total_us, result.queue_us);
    EXPECT_GT(result.compute_us, 0.0);
  }
  EXPECT_GE(report.metrics.total.p99_us, report.metrics.total.p50_us);
  EXPECT_GE(report.metrics.total.max_us, report.metrics.total.p99_us);
}

}  // namespace
}  // namespace haan::serve
