#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace haan::serve {
namespace {

Request make_request(std::uint64_t id) {
  Request request;
  request.id = id;
  request.tokens = {1, 2, 3};
  return request;
}

TEST(RequestQueue, FifoOrder) {
  RequestQueue queue(8);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(make_request(i)));
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto popped = queue.pop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->id, i);
  }
}

TEST(RequestQueue, TryPushFailsWhenFull) {
  RequestQueue queue(2);
  EXPECT_TRUE(queue.try_push(make_request(0)));
  EXPECT_TRUE(queue.try_push(make_request(1)));
  EXPECT_FALSE(queue.try_push(make_request(2)));
  EXPECT_EQ(queue.size(), 2u);
}

TEST(RequestQueue, TryPopEmptyReturnsNullopt) {
  RequestQueue queue(2);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(RequestQueue, TriStateTryPopDistinguishesEmptyFromDrained) {
  RequestQueue queue(4);
  Request out;
  // Open and empty: momentarily nothing, more may arrive.
  EXPECT_EQ(queue.try_pop(out), TryPopResult::kEmpty);

  ASSERT_TRUE(queue.push(make_request(0)));
  ASSERT_TRUE(queue.push(make_request(1)));
  queue.close();

  // Closed but not drained: items still pop.
  EXPECT_EQ(queue.try_pop(out), TryPopResult::kItem);
  EXPECT_EQ(out.id, 0u);
  EXPECT_EQ(queue.try_pop(out), TryPopResult::kItem);
  EXPECT_EQ(out.id, 1u);

  // Closed and drained: end-of-stream, repeatably.
  EXPECT_EQ(queue.try_pop(out), TryPopResult::kDrained);
  EXPECT_EQ(queue.try_pop(out), TryPopResult::kDrained);
}

TEST(RequestQueue, TriStateTryPopReleasesBlockedProducer) {
  RequestQueue queue(1);
  ASSERT_TRUE(queue.push(make_request(0)));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(make_request(1)));  // blocks: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Request out;
  EXPECT_EQ(queue.try_pop(out), TryPopResult::kItem);  // frees a slot
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(RequestQueue, PushBlocksUntilSpace) {
  RequestQueue queue(1);
  ASSERT_TRUE(queue.push(make_request(0)));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(make_request(1)));  // blocks: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still parked on the full queue

  const auto popped = queue.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 0u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(RequestQueue, PopBlocksUntilPush) {
  RequestQueue queue(2);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto popped = queue.pop();  // blocks: queue is empty
    EXPECT_TRUE(popped.has_value());
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  EXPECT_TRUE(queue.push(make_request(7)));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(RequestQueue, PopForTimesOut) {
  RequestQueue queue(2);
  const auto popped = queue.pop_for(std::chrono::microseconds(2000));
  EXPECT_FALSE(popped.has_value());
}

TEST(RequestQueue, CloseDrainsThenEndOfStream) {
  RequestQueue queue(4);
  EXPECT_TRUE(queue.push(make_request(0)));
  EXPECT_TRUE(queue.push(make_request(1)));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.push(make_request(2)));      // rejected after close
  EXPECT_FALSE(queue.try_push(make_request(3)));  // ditto
  EXPECT_TRUE(queue.pop().has_value());           // drains remaining items
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());  // end-of-stream, no block
}

TEST(RequestQueue, CloseWakesBlockedConsumers) {
  RequestQueue queue(2);
  std::thread consumer([&] { EXPECT_FALSE(queue.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  consumer.join();
}

TEST(RequestQueue, CloseWakesBlockedProducers) {
  RequestQueue queue(1);
  ASSERT_TRUE(queue.push(make_request(0)));
  std::thread producer([&] { EXPECT_FALSE(queue.push(make_request(1))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  producer.join();
}

TEST(RequestQueue, HighWatermarkTracksDeepestOccupancy) {
  RequestQueue queue(8);
  for (std::uint64_t i = 0; i < 6; ++i) ASSERT_TRUE(queue.push(make_request(i)));
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.pop().has_value());
  EXPECT_EQ(queue.high_watermark(), 6u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(RequestQueue, MeanDepthSamplesPopsAsWellAsPushes) {
  // Fill to 4 then drain to 0. Post-push depths are 1,2,3,4 and post-pop
  // depths are 3,2,1,0: the unbiased event-sampled mean is 2.0. A push-only
  // sample stream (the old feeder-side sampling) would report 2.5 — it never
  // sees the drain phase.
  RequestQueue queue(8);
  for (std::uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(queue.push(make_request(i)));
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.pop().has_value());
  EXPECT_EQ(queue.depth_samples(), 8u);
  EXPECT_DOUBLE_EQ(queue.mean_depth(), 2.0);
}

TEST(RequestQueue, MeanDepthCoversEveryPopVariant) {
  RequestQueue queue(8);
  EXPECT_EQ(queue.depth_samples(), 0u);
  EXPECT_EQ(queue.mean_depth(), 0.0);
  ASSERT_TRUE(queue.try_push(make_request(0)));           // depth 1
  ASSERT_TRUE(queue.push(make_request(1)));               // depth 2
  ASSERT_TRUE(queue.try_pop().has_value());               // depth 1
  Request out;
  ASSERT_EQ(queue.try_pop(out), TryPopResult::kItem);     // depth 0
  ASSERT_TRUE(queue.push(make_request(2)));               // depth 1
  ASSERT_TRUE(queue.pop_for(std::chrono::microseconds(1000)).has_value());  // 0
  // Samples: 1,2,1,0,1,0 -> mean 5/6. Failed pops must not add samples.
  EXPECT_EQ(queue.try_pop(out), TryPopResult::kEmpty);
  EXPECT_EQ(queue.depth_samples(), 6u);
  EXPECT_DOUBLE_EQ(queue.mean_depth(), 5.0 / 6.0);
}

TEST(RequestQueue, ManyProducersManyConsumersLoseNothing) {
  RequestQueue queue(4);
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 50;

  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(make_request(
            static_cast<std::uint64_t>(p * kPerProducer + i))));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (queue.pop().has_value()) consumed.fetch_add(1);
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  queue.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace haan::serve
