// Mega-batch serving: packed cross-request execution through the full
// queue -> scheduler -> worker-pool -> metrics stack. Covers bit-identity
// against per-request mode and the single-threaded reference (ragged prompt
// lengths, prime Σ seq_len, singleton batches, forced row-partition thread
// counts), the packed metrics (packs, rows/pack, occupancy), and counter
// aggregation semantics under packing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/server.hpp"

namespace haan::serve {
namespace {

ServerConfig mega_server(const std::string& norm, std::size_t workers,
                         std::size_t max_batch) {
  ServerConfig config;
  config.model = model::tiny_test_model();
  config.norm = norm;
  config.workers = workers;
  config.queue_capacity = 32;
  config.scheduler.max_batch = max_batch;
  config.scheduler.max_wait = std::chrono::microseconds(200);
  config.paced = false;
  config.keep_hidden = true;
  // Explicit mode: these tests assert mode-specific counter shapes, so they
  // must not flip to chunked execution under the HAAN_PREFILL_CHUNK CI matrix.
  config.mode = ExecMode::kMegaBatch;
  config.calibration.n_samples = 8;
  config.calibration.seq_len = 16;
  config.calibration.position_stride = 4;
  config.calibration.planner.min_gap = 4;
  return config;
}

/// Ragged fixed workload: lengths cycle {1, 7, 13, 4, 11, 2}; Σ of one cycle
/// = 38, and the cycle includes single-token prompts. Arrival offsets are 0
/// (closed loop).
std::vector<Request> ragged_workload(std::size_t n, std::size_t vocab) {
  const std::size_t lens[] = {1, 7, 13, 4, 11, 2};
  common::Rng rng(29);
  std::vector<Request> workload;
  for (std::size_t i = 0; i < n; ++i) {
    Request request;
    request.id = i;
    request.tokens.resize(lens[i % 6]);
    for (auto& t : request.tokens) {
      t = static_cast<int>(rng.uniform_index(vocab));
    }
    workload.push_back(std::move(request));
  }
  return workload;
}

void expect_bit_identical(const ServeReport& a, const ServeReport& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].id, b.results[i].id);
    EXPECT_EQ(a.results[i].hidden_checksum, b.results[i].hidden_checksum)
        << "request " << i;
    ASSERT_EQ(a.results[i].hidden.size(), b.results[i].hidden.size());
    for (std::size_t j = 0; j < a.results[i].hidden.size(); ++j) {
      ASSERT_EQ(a.results[i].hidden[j], b.results[i].hidden[j])
          << "request " << i << " element " << j;
    }
  }
}

TEST(MegaBatchServe, PackedRunBitIdenticalToReferenceRaggedLengths) {
  for (const std::string norm : {"exact", "haan", "haan-int8"}) {
    Server server(mega_server(norm, 3, 4));
    const auto workload = ragged_workload(30, server.config().model.vocab_size);
    const auto reference = server.run_reference(workload);
    const auto packed = server.run(workload);
    expect_bit_identical(packed, reference);
    EXPECT_GT(packed.metrics.packed_forwards, 0u);
  }
}

TEST(MegaBatchServe, PackedModeMatchesPerRequestModeBitForBit) {
  auto config = mega_server("haan", 2, 4);
  const auto workload = ragged_workload(24, config.model.vocab_size);

  Server packed_server(config);
  config.mode = ExecMode::kPerRequest;
  Server per_request_server(config);

  const auto packed = packed_server.run(workload);
  const auto per_request = per_request_server.run(workload);
  expect_bit_identical(packed, per_request);

  // Per-row counters agree; only the batching shape differs (packed makes
  // fewer row-block calls over more rows, and records packs).
  EXPECT_EQ(packed.metrics.norm.norm_calls, per_request.metrics.norm.norm_calls);
  EXPECT_EQ(packed.metrics.norm.isd_computed,
            per_request.metrics.norm.isd_computed);
  EXPECT_EQ(packed.metrics.norm.isd_predicted,
            per_request.metrics.norm.isd_predicted);
  EXPECT_EQ(packed.metrics.norm.elements_read,
            per_request.metrics.norm.elements_read);
  EXPECT_EQ(packed.metrics.norm.fused_residual_norms,
            per_request.metrics.norm.fused_residual_norms);
  EXPECT_EQ(packed.metrics.norm.batched_rows,
            per_request.metrics.norm.batched_rows);
  EXPECT_LT(packed.metrics.norm.batched_norm_calls,
            per_request.metrics.norm.batched_norm_calls);
  EXPECT_GT(packed.metrics.rows_per_batched_call(),
            per_request.metrics.rows_per_batched_call());
  EXPECT_EQ(per_request.metrics.packed_forwards, 0u);
}

TEST(MegaBatchServe, RowPartitionThreadCountDoesNotChangeOutputs) {
  auto config = mega_server("haan", 1, 8);
  const auto workload = ragged_workload(16, config.model.vocab_size);

  config.norm_threads = 1;
  Server serial(config);
  config.norm_threads = 3;
  Server threaded(config);

  const auto r1 = serial.run(workload);
  const auto r3 = threaded.run(workload);
  expect_bit_identical(r1, r3);
  EXPECT_EQ(r1.metrics.norm.isd_computed, r3.metrics.norm.isd_computed);
  EXPECT_EQ(r1.metrics.norm.isd_predicted, r3.metrics.norm.isd_predicted);
}

TEST(MegaBatchServe, SingletonBatchesPackOneSequenceEach) {
  // max_batch=1 degenerates every pack to a single sequence; rows/pack then
  // equals the mean prompt length and occupancy is exactly 1.
  Server server(mega_server("exact", 2, 1));
  const auto workload = ragged_workload(12, server.config().model.vocab_size);
  const auto report = server.run(workload);

  ASSERT_EQ(report.results.size(), 12u);
  EXPECT_EQ(report.metrics.packed_forwards, 12u);
  EXPECT_EQ(report.metrics.packed_sequences, 12u);
  std::size_t total_rows = 0;
  for (const auto& request : workload) total_rows += request.tokens.size();
  EXPECT_EQ(report.metrics.packed_rows, total_rows);
  EXPECT_DOUBLE_EQ(report.metrics.pack_occupancy(), 1.0);

  const auto reference = server.run_reference(workload);
  expect_bit_identical(report, reference);
}

TEST(MegaBatchServe, PackedMetricsReportRowsAndOccupancy) {
  // Closed-loop backlog with max_batch=4 over 16 requests: packs of (almost
  // always) 4 sequences; occupancy in (0, 1], rows/pack = packed mean Σ len.
  Server server(mega_server("haan", 1, 4));
  const auto workload = ragged_workload(16, server.config().model.vocab_size);
  const auto report = server.run(workload);

  EXPECT_GE(report.metrics.packed_forwards, 4u);
  EXPECT_EQ(report.metrics.packed_sequences, 16u);
  EXPECT_EQ(report.metrics.pack_capacity, 4u);
  std::size_t total_rows = 0;
  for (const auto& request : workload) total_rows += request.tokens.size();
  EXPECT_EQ(report.metrics.packed_rows, total_rows);
  EXPECT_GT(report.metrics.pack_occupancy(), 0.0);
  EXPECT_LE(report.metrics.pack_occupancy(), 1.0);
  EXPECT_GT(report.metrics.rows_per_pack(), 0.0);

  // The JSON report carries the packing fields.
  const auto json = report.metrics.to_json().dump_pretty();
  EXPECT_NE(json.find("packed_forwards"), std::string::npos);
  EXPECT_NE(json.find("pack_occupancy"), std::string::npos);
  EXPECT_NE(json.find("rows_per_pack"), std::string::npos);
}

TEST(MegaBatchServe, PrimeTotalRowsPackRunsCleanly) {
  // One pack of Σ seq_len = 13 (prime) through a single worker: exercises
  // non-divisible row counts through every partitioned kernel path.
  auto config = mega_server("haan-full", 1, 3);
  config.norm_threads = 3;
  Server server(config);
  std::vector<Request> workload = ragged_workload(3, config.model.vocab_size);
  // Lengths 1, 7, 13 -> first batch may pack all three (Σ = 21) or fewer;
  // either way ragged, and the reference must match bit for bit.
  const auto reference = server.run_reference(workload);
  const auto packed = server.run(workload);
  expect_bit_identical(packed, reference);
}

}  // namespace
}  // namespace haan::serve
