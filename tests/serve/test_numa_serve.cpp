// NUMA placement parity through the serving stack: placement moves memory
// (arenas, mbind) and threads (node pinning), never values, so every
// provider x execution mode x thread count must produce bit-identical
// results under HAAN_NUMA=off, auto and interleave — and match the
// single-threaded reference oracle. Also covers the arena stats surfaced in
// ServeMetrics (zero under off, live under auto) and the logical-bytes KV
// accounting that keeps residency metrics comparable across modes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mem/topology.hpp"
#include "model/kv_cache.hpp"
#include "serve/server.hpp"

namespace haan::serve {
namespace {

/// Forces one placement mode for the test body, restoring environment-driven
/// resolution on exit so tests stay order-independent.
class NumaModeGuard {
 public:
  explicit NumaModeGuard(mem::NumaMode mode) {
    mem::set_numa_mode_override(mode);
  }
  ~NumaModeGuard() { mem::clear_numa_mode_override(); }
};

ServerConfig numa_server(const std::string& norm, std::size_t workers) {
  ServerConfig config;
  config.model = model::tiny_test_model();
  config.norm = norm;
  config.workers = workers;
  config.queue_capacity = 32;
  config.scheduler.max_batch = 4;
  config.scheduler.max_wait = std::chrono::microseconds(200);
  config.paced = false;
  config.keep_hidden = true;
  config.mode = ExecMode::kMegaBatch;
  config.calibration.n_samples = 8;
  config.calibration.seq_len = 16;
  config.calibration.position_stride = 4;
  config.calibration.planner.min_gap = 4;
  return config;
}

std::vector<Request> ragged_workload(std::size_t n, std::size_t vocab,
                                     std::size_t max_new = 0) {
  const std::size_t lens[] = {3, 7, 13, 4, 11, 1};
  common::Rng rng(41);
  std::vector<Request> workload;
  for (std::size_t i = 0; i < n; ++i) {
    Request request;
    request.id = i;
    request.max_new_tokens = max_new;
    request.tokens.resize(lens[i % 6]);
    for (auto& t : request.tokens) {
      t = static_cast<int>(rng.uniform_index(vocab));
    }
    workload.push_back(std::move(request));
  }
  return workload;
}

void expect_bit_identical(const ServeReport& a, const ServeReport& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].hidden_checksum, b.results[i].hidden_checksum)
        << "request " << i;
    EXPECT_EQ(a.results[i].generated, b.results[i].generated) << "request " << i;
    ASSERT_EQ(a.results[i].hidden.size(), b.results[i].hidden.size());
    for (std::size_t j = 0; j < a.results[i].hidden.size(); ++j) {
      ASSERT_EQ(a.results[i].hidden[j], b.results[i].hidden[j])
          << "request " << i << " element " << j;
    }
  }
}

TEST(NumaServe, EveryProviderBitIdenticalAcrossPlacementModes) {
  for (const std::string norm :
       {"exact", "haan", "haan-int8", "haan-fp16", "haan-full", "haan-noskip"}) {
    auto config = numa_server(norm, 2);
    const auto workload = ragged_workload(18, config.model.vocab_size);

    ServeReport off_report, auto_report, interleave_report, reference;
    {
      NumaModeGuard guard(mem::NumaMode::kOff);
      Server server(config);
      off_report = server.run(workload);
      reference = server.run_reference(workload);
    }
    {
      NumaModeGuard guard(mem::NumaMode::kAuto);
      Server server(config);
      auto_report = server.run(workload);
    }
    {
      NumaModeGuard guard(mem::NumaMode::kInterleave);
      Server server(config);
      interleave_report = server.run(workload);
    }
    expect_bit_identical(off_report, reference);
    expect_bit_identical(auto_report, off_report);
    expect_bit_identical(interleave_report, off_report);
    EXPECT_EQ(auto_report.metrics.norm.isd_computed,
              off_report.metrics.norm.isd_computed)
        << norm;
    EXPECT_EQ(auto_report.metrics.norm.elements_read,
              off_report.metrics.norm.elements_read)
        << norm;
  }
}

TEST(NumaServe, ChunkedDecodeBitIdenticalAcrossPlacementModes) {
  auto config = numa_server("haan", 2);
  config.mode = ExecMode::kChunked;
  config.prefill_chunk = 5;
  const auto workload =
      ragged_workload(12, config.model.vocab_size, /*max_new=*/3);

  ServeReport off_report, auto_report, reference;
  {
    NumaModeGuard guard(mem::NumaMode::kOff);
    Server server(config);
    off_report = server.run(workload);
    reference = server.run_reference(workload);
  }
  {
    NumaModeGuard guard(mem::NumaMode::kAuto);
    Server server(config);
    auto_report = server.run(workload);
  }
  expect_bit_identical(off_report, reference);
  expect_bit_identical(auto_report, off_report);

  // Sessions carry KV in arenas under auto and on the heap under off; the
  // residency metric is LOGICAL bytes in both modes, so it never exceeds the
  // stored-row footprint of the whole workload even though the auto-mode
  // arenas RESERVE the full prompt+decode capacity up front. (The watermark
  // itself depends on how many sessions overlap, so only the bound is
  // deterministic.)
  std::size_t stored_rows = 0;
  for (const Request& request : workload) {
    stored_rows += request.tokens.size() + request.max_new_tokens;
  }
  const std::size_t logical_bound =
      config.model.n_blocks * 2 * stored_rows * config.model.d_model *
      sizeof(float);
  for (const ServeReport* report : {&off_report, &auto_report}) {
    EXPECT_GT(report->metrics.max_kv_bytes, 0u);
    EXPECT_LE(report->metrics.max_kv_bytes, logical_bound);
  }
}

TEST(NumaServe, NormThreadCountDoesNotChangeOutputsUnderPlacement) {
  NumaModeGuard guard(mem::NumaMode::kAuto);
  auto config = numa_server("haan-int8", 1);
  const auto workload = ragged_workload(12, config.model.vocab_size);

  config.norm_threads = 1;
  Server serial(config);
  config.norm_threads = 3;
  Server threaded(config);
  expect_bit_identical(serial.run(workload), threaded.run(workload));
}

TEST(NumaServe, ArenaStatsZeroUnderOffAndLiveUnderAuto) {
  auto config = numa_server("haan", 2);
  const auto workload = ragged_workload(16, config.model.vocab_size);

  {
    NumaModeGuard guard(mem::NumaMode::kOff);
    Server server(config);
    const auto report = server.run(workload);
    EXPECT_EQ(report.metrics.mem.numa_mode, "off");
    EXPECT_EQ(report.metrics.mem.arena_bytes, 0u);
    EXPECT_EQ(report.metrics.mem.arena_allocations, 0u);
    EXPECT_EQ(report.metrics.mem.arena_resets, 0u);
  }
  {
    NumaModeGuard guard(mem::NumaMode::kAuto);
    Server server(config);
    const auto report = server.run(workload);
    EXPECT_EQ(report.metrics.mem.numa_mode, "auto");
    EXPECT_EQ(report.metrics.mem.nodes,
              static_cast<int>(mem::topology().nodes()));
    EXPECT_GT(report.metrics.mem.arena_bytes, 0u);
    EXPECT_GT(report.metrics.mem.arena_allocations, 0u);
    EXPECT_GT(report.metrics.mem.arena_resets, 0u);
    EXPECT_GE(report.metrics.mem.arena_reuse_ratio(), 0.0);
    EXPECT_LE(report.metrics.mem.arena_reuse_ratio(), 1.0);

    // The serialized report carries the placement block.
    const auto json = report.metrics.to_json().dump_pretty();
    EXPECT_NE(json.find("\"mem\""), std::string::npos);
    EXPECT_NE(json.find("arena_reuse_ratio"), std::string::npos);
    EXPECT_NE(json.find("cross_node_rows"), std::string::npos);
  }
}

TEST(NumaServe, KvCacheLogicalBytesIgnoreArenaCapacity) {
  // An arena-backed cache with a generous row reservation holds more
  // CAPACITY than a bare heap cache of the same content, but the logical
  // view — what residency metrics report — is identical.
  mem::Arena arena;
  model::KvCache arena_cache(2, 8, &arena, /*reserve_rows=*/64);
  model::KvCache heap_cache(2, 8);
  const std::vector<float> rows(3 * 8, 1.5f);
  for (std::size_t block = 0; block < 2; ++block) {
    arena_cache.append(block, rows, rows);
    heap_cache.append(block, rows, rows);
  }
  arena_cache.commit(3);
  heap_cache.commit(3);
  EXPECT_EQ(arena_cache.logical_bytes(), heap_cache.logical_bytes());
  EXPECT_EQ(arena_cache.logical_bytes(), 2u * 2u * 3u * 8u * sizeof(float));
  EXPECT_GE(arena_cache.memory_bytes(), 2u * 2u * 64u * 8u * sizeof(float));
  EXPECT_GE(arena_cache.memory_bytes(), heap_cache.memory_bytes());
}

}  // namespace
}  // namespace haan::serve
