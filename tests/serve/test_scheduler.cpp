#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

namespace haan::serve {
namespace {

Request make_request(std::uint64_t id) {
  Request request;
  request.id = id;
  request.tokens = {0};
  request.enqueued_at = Clock::now();
  return request;
}

/// These tests pin the legacy FIFO contract (strict arrival order across
/// batches); the policy knobs stay at their kFifo defaults.
SchedulerConfig make_config(std::size_t max_batch, std::int64_t max_wait_us) {
  SchedulerConfig config;
  config.max_batch = max_batch;
  config.max_wait = std::chrono::microseconds(max_wait_us);
  config.policy.policy = SchedPolicy::kFifo;
  return config;
}

TEST(BatchScheduler, FormsFullBatchFromBackloggedQueue) {
  RequestQueue queue(16);
  for (std::uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(queue.push(make_request(i)));

  BatchScheduler scheduler(queue, make_config(4, 100));
  const auto batch = scheduler.next_batch();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->requests.size(), 4u);
  EXPECT_EQ(batch->sequence, 0u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(batch->requests[i].id, i);
}

TEST(BatchScheduler, MaxWaitDeadlineClosesPartialBatch) {
  RequestQueue queue(16);
  ASSERT_TRUE(queue.push(make_request(0)));

  BatchScheduler scheduler(queue, make_config(8, 5000));
  const auto t0 = Clock::now();
  const auto batch = scheduler.next_batch();  // nothing else arrives
  const double waited = elapsed_us(t0, Clock::now());
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->requests.size(), 1u);
  // Scheduler held the batch open for the deadline, not forever.
  EXPECT_GE(waited, 4000.0);
  EXPECT_LT(waited, 2e6);
}

TEST(BatchScheduler, CollectsLateArrivalsWithinDeadline) {
  RequestQueue queue(16);
  ASSERT_TRUE(queue.push(make_request(0)));

  BatchScheduler scheduler(
      queue, make_config(4, 200000));
  std::thread late_producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(queue.push(make_request(1)));
    ASSERT_TRUE(queue.push(make_request(2)));
    ASSERT_TRUE(queue.push(make_request(3)));
  });
  const auto batch = scheduler.next_batch();
  late_producer.join();
  ASSERT_TRUE(batch.has_value());
  // Batch filled to max_batch from arrivals inside the wait window.
  EXPECT_EQ(batch->requests.size(), 4u);
}

TEST(BatchScheduler, FifoAcrossConsecutiveBatches) {
  RequestQueue queue(32);
  for (std::uint64_t i = 0; i < 12; ++i) ASSERT_TRUE(queue.push(make_request(i)));
  queue.close();

  BatchScheduler scheduler(queue, make_config(5, 100));
  std::vector<std::uint64_t> order;
  std::uint64_t expected_sequence = 0;
  while (const auto batch = scheduler.next_batch()) {
    EXPECT_EQ(batch->sequence, expected_sequence++);
    for (const Request& request : batch->requests) order.push_back(request.id);
  }
  ASSERT_EQ(order.size(), 12u);
  for (std::uint64_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(scheduler.batches_formed(), 3u);  // 5 + 5 + 2
}

TEST(BatchScheduler, EndOfStreamAfterDrain) {
  RequestQueue queue(4);
  ASSERT_TRUE(queue.push(make_request(0)));
  queue.close();

  BatchScheduler scheduler(queue, make_config(2, 100));
  EXPECT_TRUE(scheduler.next_batch().has_value());
  EXPECT_FALSE(scheduler.next_batch().has_value());
  EXPECT_FALSE(scheduler.next_batch().has_value());  // stays terminated
}

TEST(BatchScheduler, StampsDequeueTimes) {
  RequestQueue queue(4);
  ASSERT_TRUE(queue.push(make_request(0)));
  ASSERT_TRUE(queue.push(make_request(1)));
  queue.close();

  BatchScheduler scheduler(queue, make_config(2, 100));
  const auto batch = scheduler.next_batch();
  ASSERT_TRUE(batch.has_value());
  for (const Request& request : batch->requests) {
    EXPECT_GE(elapsed_us(request.enqueued_at, request.dequeued_at), 0.0);
    EXPECT_NE(request.dequeued_at, Clock::time_point{});
  }
}

TEST(BatchScheduler, ZeroMaxWaitFormsSingletonBatchFromEmptyQueue) {
  // max_wait=0: the deadline is already expired when the queue runs dry, so a
  // lone request forms a singleton batch immediately — the packed path must
  // handle these (a mega-batch of one sequence).
  RequestQueue queue(4);
  ASSERT_TRUE(queue.push(make_request(0)));

  BatchScheduler scheduler(queue, make_config(8, 0));
  const auto t0 = Clock::now();
  const auto batch = scheduler.next_batch();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->requests.size(), 1u);
  EXPECT_LT(elapsed_us(t0, Clock::now()), 1e6);  // no wait burned
}

TEST(BatchScheduler, ZeroMaxWaitStillDrainsBackloggedQueue) {
  // The fast-path pop takes already-queued requests regardless of the
  // deadline; max_wait only bounds *waiting* for future arrivals.
  RequestQueue queue(16);
  for (std::uint64_t i = 0; i < 6; ++i) ASSERT_TRUE(queue.push(make_request(i)));

  BatchScheduler scheduler(queue, make_config(8, 0));
  const auto batch = scheduler.next_batch();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->requests.size(), 6u);
}

TEST(BatchScheduler, EndOfStreamClosesOpenBatchWithoutBurningMaxWait) {
  // A batch held open under a long max-wait must close as soon as the stream
  // ends (tri-state try_pop reports kDrained), not when the deadline expires.
  RequestQueue queue(4);
  ASSERT_TRUE(queue.push(make_request(0)));

  BatchScheduler scheduler(
      queue, make_config(8, 30000000));
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(queue.push(make_request(1)));
    queue.close();
  });
  const auto t0 = Clock::now();
  const auto batch = scheduler.next_batch();
  closer.join();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->requests.size(), 2u);
  EXPECT_LT(elapsed_us(t0, Clock::now()), 10e6);  // << the 30 s max-wait
  EXPECT_FALSE(scheduler.next_batch().has_value());
}

TEST(BatchScheduler, DrainedTailYieldsRaggedFinalBatch) {
  // 7 requests into max_batch=4 -> a full batch and a ragged 3-request tail
  // (the packed path sees both a full and a partial mega-batch).
  RequestQueue queue(16);
  for (std::uint64_t i = 0; i < 7; ++i) ASSERT_TRUE(queue.push(make_request(i)));
  queue.close();

  BatchScheduler scheduler(queue, make_config(4, 100));
  const auto first = scheduler.next_batch();
  const auto second = scheduler.next_batch();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->requests.size(), 4u);
  EXPECT_EQ(second->requests.size(), 3u);
  EXPECT_FALSE(scheduler.next_batch().has_value());
}

TEST(BatchScheduler, ConcurrentConsumersPartitionTheStream) {
  RequestQueue queue(64);
  constexpr std::uint64_t kRequests = 40;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(queue.push(make_request(i)));
  }
  queue.close();

  BatchScheduler scheduler(queue, make_config(3, 100));
  std::mutex mu;
  std::vector<std::uint64_t> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (const auto batch = scheduler.next_batch()) {
        std::lock_guard<std::mutex> lock(mu);
        for (const Request& request : batch->requests) seen.push_back(request.id);
      }
    });
  }
  for (auto& consumer : consumers) consumer.join();

  // No request lost, none duplicated.
  ASSERT_EQ(seen.size(), kRequests);
  std::sort(seen.begin(), seen.end());
  for (std::uint64_t i = 0; i < kRequests; ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace haan::serve
