// End-to-end tracing through the serving stack: a traced server run must
// export a Chrome trace that parses with the in-repo JSON parser, stays
// begin/end balanced on every thread, carries one flow start ("s", feeder)
// and one flow finish ("f", worker) per request id, shows the request
// lifecycle spans (enqueue / batch-form / pack / forward / complete) and the
// provider-tagged per-layer norm spans, and names the feeder and worker
// tracks. Also checks the disabled path records nothing and the live
// snapshot emitter produces parseable JSON lines during a real run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/json_lite.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace haan::serve {
namespace {

ServerConfig traced_server(const std::string& norm) {
  ServerConfig config;
  config.model = model::tiny_test_model();
  config.norm = norm;
  config.workers = 2;
  config.queue_capacity = 16;
  config.scheduler.max_batch = 4;
  config.scheduler.max_wait = std::chrono::microseconds(200);
  config.paced = false;
  // Pinned: these tests assert mega-batch lifecycle spans (batch-form); the
  // chunked span shapes (pack-form, phase args) are covered by the decode
  // trace assertions in test_decode_serve.cpp.
  config.mode = ExecMode::kMegaBatch;
  config.calibration.n_samples = 8;
  config.calibration.seq_len = 16;
  config.calibration.position_stride = 4;
  config.calibration.planner.min_gap = 4;
  return config;
}

std::vector<Request> small_workload(std::size_t n, std::size_t vocab) {
  const std::size_t lens[] = {3, 7, 5, 2};
  common::Rng rng(17);
  std::vector<Request> workload;
  for (std::size_t i = 0; i < n; ++i) {
    Request request;
    request.id = i;
    request.tokens.resize(lens[i % 4]);
    for (auto& t : request.tokens) {
      t = static_cast<int>(rng.uniform_index(vocab));
    }
    workload.push_back(std::move(request));
  }
  return workload;
}

class ServeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::tracer().set_enabled(false);
    obs::tracer().reset();
    obs::tracer().set_ring_capacity(1 << 16);
  }
  void TearDown() override {
    obs::tracer().set_enabled(false);
    obs::tracer().reset();
  }
};

TEST_F(ServeTraceTest, TracedRunExportsBalancedFlowLinkedTrace) {
  constexpr std::size_t kRequests = 12;
  obs::tracer().set_enabled(true);
  Server server(traced_server("haan"));
  const auto report =
      server.run(small_workload(kRequests, server.config().model.vocab_size));
  ASSERT_EQ(report.results.size(), kRequests);

  const std::string json = obs::tracer().export_chrome_json();
  const auto parsed = common::Json::parse(json);
  ASSERT_TRUE(parsed.has_value()) << "trace is not valid JSON";
  const common::Json* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::map<int, int> depth;                   // per-tid open-span depth
  std::map<double, int> flow_starts;          // request id -> count
  std::map<double, int> flow_finishes;
  std::map<double, int> start_tid, finish_tid;
  std::set<std::string> span_names;
  std::set<std::string> thread_names;
  for (const common::Json& event : events->as_array()) {
    const std::string& ph = event.find("ph")->as_string();
    const int tid = static_cast<int>(event.find("tid")->as_number());
    if (ph == "M") {
      thread_names.insert(event.find("args")->find("name")->as_string());
    } else if (ph == "B") {
      ++depth[tid];
      span_names.insert(event.find("name")->as_string());
    } else if (ph == "E") {
      --depth[tid];
      ASSERT_GE(depth[tid], 0) << "unbalanced E on tid " << tid;
    } else if (ph == "s") {
      const double id = event.find("id")->as_number();
      ++flow_starts[id];
      start_tid[id] = tid;
    } else if (ph == "f") {
      const double id = event.find("id")->as_number();
      ++flow_finishes[id];
      finish_tid[id] = tid;
      EXPECT_EQ(event.find("bp")->as_string(), "e");
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed spans on tid " << tid;
  }

  // One flow start (feeder) and one finish (a worker) per request id, and the
  // two ends live on different threads — the cross-thread link Perfetto draws.
  for (std::size_t id = 0; id < kRequests; ++id) {
    const double key = static_cast<double>(id);
    EXPECT_EQ(flow_starts[key], 1) << "request " << id;
    EXPECT_EQ(flow_finishes[key], 1) << "request " << id;
    EXPECT_NE(start_tid[key], finish_tid[key]) << "request " << id;
  }

  // Request lifecycle + forward-pass spans, with the provider-tagged norm.
  for (const char* expected : {"enqueue", "batch-form", "pack", "forward",
                               "complete", "embed", "attn", "mlp", "norm/haan"}) {
    EXPECT_TRUE(span_names.count(expected)) << "missing span " << expected;
  }
  EXPECT_TRUE(thread_names.count("feeder"));
  EXPECT_TRUE(thread_names.count("worker-0"));
}

TEST_F(ServeTraceTest, ProviderLabelFollowsNormProvider) {
  obs::tracer().set_enabled(true);
  ServerConfig config = traced_server("exact");
  config.calibrate = false;
  Server server(config);
  server.run(small_workload(4, server.config().model.vocab_size));
  const auto parsed = common::Json::parse(obs::tracer().export_chrome_json());
  ASSERT_TRUE(parsed.has_value());
  std::set<std::string> span_names;
  for (const common::Json& event : parsed->find("traceEvents")->as_array()) {
    if (event.find("ph")->as_string() == "B") {
      span_names.insert(event.find("name")->as_string());
    }
  }
  EXPECT_TRUE(span_names.count("norm/exact"));
  EXPECT_FALSE(span_names.count("norm/haan"));
}

TEST_F(ServeTraceTest, DisabledTracingRecordsNothingDuringRun) {
  ASSERT_FALSE(obs::tracing_enabled());
  Server server(traced_server("haan"));
  const auto report =
      server.run(small_workload(6, server.config().model.vocab_size));
  ASSERT_EQ(report.results.size(), 6u);
  EXPECT_EQ(obs::tracer().stats().events, 0u);
}

TEST_F(ServeTraceTest, WriteChromeTraceRoundTripsThroughFile) {
  obs::tracer().set_enabled(true);
  Server server(traced_server("haan"));
  server.run(small_workload(4, server.config().model.vocab_size));
  const std::string path = ::testing::TempDir() + "haan_serve_trace_test.json";
  std::remove(path.c_str());
  ASSERT_TRUE(obs::tracer().write_chrome_trace(path));
  const auto contents = common::read_file(path);
  ASSERT_TRUE(contents.has_value());
  const auto parsed = common::Json::parse(*contents);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_GT(parsed->find("traceEvents")->as_array().size(), 0u);
  std::remove(path.c_str());
}

TEST_F(ServeTraceTest, LiveSnapshotsEmitParseableJsonDuringRun) {
  const std::string path = ::testing::TempDir() + "haan_serve_stats_test.jsonl";
  std::remove(path.c_str());
  ServerConfig config = traced_server("haan");
  config.stats_interval_ms = 5;
  config.stats_json_path = path;
  Server server(config);
  const auto report =
      server.run(small_workload(16, server.config().model.vocab_size));
  ASSERT_EQ(report.results.size(), 16u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  double last_completed = -1.0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto parsed = common::Json::parse(line);
    ASSERT_TRUE(parsed.has_value()) << "unparseable snapshot: " << line;
    const double completed = parsed->find("completed")->as_number();
    EXPECT_GE(completed, last_completed);  // monotone within the run
    last_completed = completed;
    ASSERT_NE(parsed->find("queue_depth"), nullptr);
    ASSERT_NE(parsed->find("throughput_rps"), nullptr);
    ASSERT_NE(parsed->find("p99_us"), nullptr);
    ++lines;
  }
  // stop() always emits a final snapshot, so at least one line exists and the
  // last one reflects the fully drained run.
  EXPECT_GE(lines, 1);
  EXPECT_EQ(last_completed, 16.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace haan::serve
