// ServeMetrics / MetricsCollector unit coverage: empty sample sets (a
// drained-empty run with zero completed requests) must finalize to all-zero
// summaries without touching an empty vector, percentiles must follow the
// nearest-rank definition (exact for the vector oracle, within one log-bucket
// ratio for the streaming histogram collector), the collector's memory must
// stay constant in the completed-request count, and the aggregated HAAN norm
// counters (including the row-block batching counters) must sum across
// workers.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "serve/metrics.hpp"

namespace haan::serve {
namespace {

TEST(SummarizeLatency, EmptySampleSetIsAllZeros) {
  const LatencySummary summary = summarize_latency({});
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.mean_us, 0.0);
  EXPECT_EQ(summary.p50_us, 0.0);
  EXPECT_EQ(summary.p95_us, 0.0);
  EXPECT_EQ(summary.p99_us, 0.0);
  EXPECT_EQ(summary.max_us, 0.0);
}

TEST(SummarizeLatency, SingleSampleIsEveryPercentile) {
  const LatencySummary summary = summarize_latency({42.0});
  EXPECT_EQ(summary.count, 1u);
  EXPECT_EQ(summary.mean_us, 42.0);
  EXPECT_EQ(summary.p50_us, 42.0);
  EXPECT_EQ(summary.p95_us, 42.0);
  EXPECT_EQ(summary.p99_us, 42.0);
  EXPECT_EQ(summary.max_us, 42.0);
}

TEST(SummarizeLatency, NearestRankPercentiles) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  const LatencySummary summary = summarize_latency(samples);
  EXPECT_EQ(summary.count, 100u);
  EXPECT_EQ(summary.p50_us, 50.0);
  EXPECT_EQ(summary.p95_us, 95.0);
  EXPECT_EQ(summary.p99_us, 99.0);
  EXPECT_EQ(summary.max_us, 100.0);
  EXPECT_EQ(summary.mean_us, 50.5);
}

TEST(MetricsCollector, FinalizeWithZeroCompletedRequestsReportsZeros) {
  // A run that drains empty: no records, no batches, no queue samples.
  const MetricsCollector collector;
  const ServeMetrics metrics = collector.finalize(0.0);
  EXPECT_EQ(metrics.completed, 0u);
  EXPECT_EQ(metrics.throughput_rps, 0.0);
  EXPECT_EQ(metrics.total.count, 0u);
  EXPECT_EQ(metrics.total.p99_us, 0.0);
  EXPECT_EQ(metrics.queued.count, 0u);
  EXPECT_EQ(metrics.compute.count, 0u);
  EXPECT_EQ(metrics.batches, 0u);
  EXPECT_EQ(metrics.mean_batch_size, 0.0);
  EXPECT_EQ(metrics.max_batch_size, 0u);
  EXPECT_EQ(metrics.max_queue_depth, 0u);
  EXPECT_EQ(metrics.mean_queue_depth, 0.0);
  EXPECT_EQ(metrics.norm.norm_calls, 0u);
  EXPECT_EQ(metrics.rows_per_batched_call(), 0.0);
  // Rendering the empty report must not crash either.
  EXPECT_FALSE(metrics.to_string().empty());
  EXPECT_FALSE(metrics.to_json().dump().empty());
}

TEST(MetricsCollector, FinalizeWithPositiveWallAndNoRequests) {
  // Wall clock elapsed but nothing completed (e.g. all requests rejected).
  const MetricsCollector collector;
  const ServeMetrics metrics = collector.finalize(2.5e6);
  EXPECT_EQ(metrics.completed, 0u);
  EXPECT_EQ(metrics.throughput_rps, 0.0);
  EXPECT_EQ(metrics.total.mean_us, 0.0);
}

TEST(MetricsCollector, NormCountersAggregateAcrossWorkers) {
  MetricsCollector collector;
  NormCounters worker1;
  worker1.norm_calls = 10;
  worker1.isd_computed = 6;
  worker1.isd_predicted = 4;
  worker1.elements_read = 640;
  worker1.fused_residual_norms = 8;
  worker1.batched_norm_calls = 2;
  worker1.batched_rows = 10;
  NormCounters worker2;
  worker2.norm_calls = 5;
  worker2.batched_norm_calls = 1;
  worker2.batched_rows = 5;
  collector.add_norm_counters(worker1);
  collector.add_norm_counters(worker2);

  const ServeMetrics metrics = collector.finalize(1.0);
  EXPECT_EQ(metrics.norm.norm_calls, 15u);
  EXPECT_EQ(metrics.norm.isd_computed, 6u);
  EXPECT_EQ(metrics.norm.isd_predicted, 4u);
  EXPECT_EQ(metrics.norm.elements_read, 640u);
  EXPECT_EQ(metrics.norm.fused_residual_norms, 8u);
  EXPECT_EQ(metrics.norm.batched_norm_calls, 3u);
  EXPECT_EQ(metrics.norm.batched_rows, 15u);
  EXPECT_EQ(metrics.rows_per_batched_call(), 5.0);
  const std::string rendered = metrics.to_string();
  EXPECT_NE(rendered.find("batched norms"), std::string::npos);
}

TEST(MetricsCollector, RecordedLatenciesSummarize) {
  MetricsCollector collector;
  for (double us : {100.0, 200.0, 300.0}) {
    RequestResult result;
    result.total_us = us;
    result.queue_us = us / 2;
    result.compute_us = us / 2;
    collector.record(result);
  }
  collector.record_batch(2);
  collector.record_batch(1);
  const ServeMetrics metrics = collector.finalize(1e6);
  EXPECT_EQ(metrics.completed, 3u);
  EXPECT_EQ(metrics.throughput_rps, 3.0);
  // Percentiles come from the streaming log-bucket histogram: accurate to one
  // bucket ratio (~4.9% at 48 buckets/decade), not exact like the vector
  // oracle above.
  const double ratio = common::LogHistogram(latency_histogram_config()).bucket_ratio();
  EXPECT_NEAR(metrics.total.mean_us, 200.0, 1e-9);  // mean/max are exact
  EXPECT_EQ(metrics.total.max_us, 300.0);
  EXPECT_NEAR(metrics.total.p50_us, 200.0, 200.0 * (ratio - 1.0));
  EXPECT_EQ(metrics.batches, 2u);
  EXPECT_EQ(metrics.mean_batch_size, 1.5);
  EXPECT_EQ(metrics.max_batch_size, 2u);
  // Queue depth is owned by the RequestQueue now; the collector leaves it for
  // the server to stamp.
  EXPECT_EQ(metrics.max_queue_depth, 0u);
}

TEST(MetricsCollector, HistogramPercentilesTrackNearestRankWithinOneBucket) {
  // The acceptance bound of the streaming collector: every reported
  // percentile lies within one log-bucket ratio of the exact nearest-rank
  // value computed by the retained-samples oracle.
  MetricsCollector collector;
  std::vector<double> totals;
  double value = 3.0;
  for (int i = 0; i < 5000; ++i) {
    // Deterministic heavy-ish tail spanning several decades.
    value = 3.0 + std::fmod(value * 1.37 + 11.7, 90000.0);
    RequestResult result;
    result.total_us = value;
    result.queue_us = value * 0.25;
    result.compute_us = value * 0.75;
    collector.record(result);
    totals.push_back(value);
  }
  const LatencySummary exact = summarize_latency(totals);
  const ServeMetrics metrics = collector.finalize(1e6);
  const double ratio = common::LogHistogram(latency_histogram_config()).bucket_ratio();
  EXPECT_LE(metrics.total.p50_us, exact.p50_us * ratio);
  EXPECT_GE(metrics.total.p50_us, exact.p50_us / ratio);
  EXPECT_LE(metrics.total.p95_us, exact.p95_us * ratio);
  EXPECT_GE(metrics.total.p95_us, exact.p95_us / ratio);
  EXPECT_LE(metrics.total.p99_us, exact.p99_us * ratio);
  EXPECT_GE(metrics.total.p99_us, exact.p99_us / ratio);
  EXPECT_EQ(metrics.total.max_us, exact.max_us);  // extremes are exact
  EXPECT_NEAR(metrics.total.mean_us, exact.mean_us, exact.mean_us * 1e-9);
}

TEST(MetricsCollector, PhaseMetricsClassifyPacksAndSummarizeLatencies) {
  MetricsCollector collector;
  collector.record_step_pack(/*prefill_rows=*/8, /*decode_rows=*/0);
  collector.record_step_pack(/*prefill_rows=*/0, /*decode_rows=*/3);
  collector.record_step_pack(/*prefill_rows=*/4, /*decode_rows=*/2);
  collector.record_ttft(500.0);
  collector.record_ttft(700.0);
  collector.record_intertoken(50.0);
  collector.record_intertoken(70.0);
  collector.record_intertoken(90.0);
  collector.record_kv_bytes(4096);
  collector.record_kv_bytes(1024);

  const ServeMetrics metrics = collector.finalize(1e6);
  EXPECT_EQ(metrics.prefill_rows, 12u);
  EXPECT_EQ(metrics.decode_rows, 5u);
  EXPECT_EQ(metrics.prefill_packs, 1u);
  EXPECT_EQ(metrics.decode_packs, 1u);
  EXPECT_EQ(metrics.mixed_packs, 1u);
  // Rows divide over the packs that carried the phase (pure + mixed).
  EXPECT_DOUBLE_EQ(metrics.prefill_rows_per_pack(), 6.0);
  EXPECT_DOUBLE_EQ(metrics.decode_rows_per_pack(), 2.5);

  EXPECT_EQ(metrics.ttft.count, 2u);
  EXPECT_EQ(metrics.ttft.max_us, 700.0);
  EXPECT_NEAR(metrics.ttft.mean_us, 600.0, 1e-9);
  EXPECT_EQ(metrics.intertoken.count, 3u);
  EXPECT_EQ(metrics.intertoken.max_us, 90.0);

  // The gauge keeps the latest sample; the watermark keeps the peak.
  EXPECT_EQ(metrics.kv_bytes_resident, 1024u);
  EXPECT_EQ(metrics.max_kv_bytes, 4096u);

  const std::string rendered = metrics.to_string();
  EXPECT_NE(rendered.find("ttft"), std::string::npos);
  EXPECT_NE(rendered.find("inter-token"), std::string::npos);
  EXPECT_NE(rendered.find("kv cache"), std::string::npos);
  const std::string json = metrics.to_json().dump();
  EXPECT_NE(json.find("latency_ttft"), std::string::npos);
  EXPECT_NE(json.find("latency_intertoken"), std::string::npos);
  EXPECT_NE(json.find("prefill_rows_per_pack"), std::string::npos);
}

TEST(MetricsCollector, PhaseMetricsZeroOutsideSessionMode) {
  const MetricsCollector collector;
  const ServeMetrics metrics = collector.finalize(1.0);
  EXPECT_EQ(metrics.ttft.count, 0u);
  EXPECT_EQ(metrics.intertoken.count, 0u);
  EXPECT_EQ(metrics.prefill_rows, 0u);
  EXPECT_EQ(metrics.decode_rows, 0u);
  EXPECT_EQ(metrics.prefill_rows_per_pack(), 0.0);
  EXPECT_EQ(metrics.decode_rows_per_pack(), 0.0);
  EXPECT_EQ(metrics.max_kv_bytes, 0u);
}

TEST(MetricsCollector, SlaOutcomesAreCountedAndShedExcludedFromLatencies) {
  MetricsCollector collector;
  // Two served (one degraded, one a deadline miss), one shed.
  RequestResult served;
  served.total_us = 100.0;
  served.priority = 1;
  collector.record(served);

  RequestResult degraded;
  degraded.total_us = 200.0;
  degraded.priority = 0;
  degraded.degraded = true;
  degraded.deadline_missed = true;
  collector.record(degraded);

  RequestResult shed;
  shed.total_us = 1e9;  // must NOT appear in any latency summary
  shed.priority = 0;
  shed.shed = true;
  shed.deadline_missed = true;
  collector.record(shed);

  const ServeMetrics metrics = collector.finalize(1e6);
  EXPECT_EQ(metrics.completed, 2u);  // served only
  EXPECT_EQ(metrics.shed_requests, 1u);
  EXPECT_EQ(metrics.degraded_requests, 1u);
  EXPECT_EQ(metrics.deadline_missed_requests, 2u);  // shed counts as a miss
  EXPECT_EQ(metrics.total.count, 2u);
  EXPECT_EQ(metrics.total.max_us, 200.0);  // the shed 1e9 never entered

  // Per-priority slices partition the outcomes.
  ASSERT_EQ(metrics.per_priority.size(), 2u);
  const PrioritySummary& p0 = metrics.per_priority.at(0);
  EXPECT_EQ(p0.total.count, 1u);
  EXPECT_EQ(p0.shed, 1u);
  EXPECT_EQ(p0.degraded, 1u);
  EXPECT_EQ(p0.deadline_missed, 2u);
  const PrioritySummary& p1 = metrics.per_priority.at(1);
  EXPECT_EQ(p1.total.count, 1u);
  EXPECT_EQ(p1.shed, 0u);
  EXPECT_EQ(p1.degraded, 0u);
  EXPECT_EQ(p1.deadline_missed, 0u);

  // The JSON artifact carries the counters and the per-priority blocks.
  const std::string json = metrics.to_json().dump();
  EXPECT_NE(json.find("\"shed_requests\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded_requests\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline_missed_requests\""), std::string::npos);
  EXPECT_NE(json.find("\"per_priority\""), std::string::npos);
  EXPECT_NE(json.find("\"1\""), std::string::npos);
  // The human-readable report mentions the outcomes too.
  EXPECT_NE(metrics.to_string().find("sla"), std::string::npos);
}

TEST(MetricsCollector, SingleClassTrafficKeepsOneImplicitBucket) {
  MetricsCollector collector;
  RequestResult result;
  result.total_us = 50.0;
  collector.record(result);
  const ServeMetrics metrics = collector.finalize(1e6);
  // Priority 0 traffic only: one implicit bucket, nothing shed or degraded.
  EXPECT_EQ(metrics.shed_requests, 0u);
  EXPECT_EQ(metrics.degraded_requests, 0u);
  ASSERT_EQ(metrics.per_priority.size(), 1u);
  EXPECT_EQ(metrics.per_priority.at(0).total.count, 1u);
}

TEST(MetricsCollector, MemoryConstantInCompletedRequestCount) {
  // The old collector kept every latency sample in vectors (O(completed));
  // the histogram collector's footprint must not grow with traffic.
  MetricsCollector small;
  MetricsCollector large;
  RequestResult result;
  result.total_us = 123.0;
  result.queue_us = 23.0;
  result.compute_us = 100.0;
  for (int i = 0; i < 100; ++i) small.record(result);
  for (int i = 0; i < 100000; ++i) {
    result.total_us = 1.0 + (i % 100000);  // spread across buckets
    large.record(result);
  }
  EXPECT_EQ(small.approx_memory_bytes(), large.approx_memory_bytes());
  EXPECT_LT(large.approx_memory_bytes(), 64u * 1024u);
  EXPECT_EQ(large.completed(), 100000u);
}

}  // namespace
}  // namespace haan::serve
