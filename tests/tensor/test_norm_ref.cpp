#include "tensor/norm_ref.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace haan::tensor {
namespace {

TEST(ExactStats, KnownValues) {
  const std::vector<float> z{1.0f, 2.0f, 3.0f, 4.0f};
  const VectorStats stats = exact_stats(z);
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_DOUBLE_EQ(stats.variance, 1.25);
  EXPECT_DOUBLE_EQ(stats.rms, std::sqrt(7.5));
}

TEST(ExactStats, ConstantVector) {
  const std::vector<float> z(16, 3.0f);
  const VectorStats stats = exact_stats(z);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.variance, 0.0);
  EXPECT_DOUBLE_EQ(stats.rms, 3.0);
}

TEST(LayerNorm, OutputZeroMeanUnitVariance) {
  common::Rng rng(1);
  std::vector<float> z(256);
  rng.fill_gaussian(z, 5.0, 3.0);
  std::vector<float> out(z.size());
  layernorm(z, {}, {}, out, 0.0);
  const VectorStats stats = exact_stats(out);
  EXPECT_NEAR(stats.mean, 0.0, 1e-6);
  EXPECT_NEAR(stats.variance, 1.0, 1e-5);
}

TEST(LayerNorm, AffineTransformApplied) {
  std::vector<float> z{1.0f, -1.0f};
  std::vector<float> alpha{2.0f, 2.0f};
  std::vector<float> beta{10.0f, 10.0f};
  std::vector<float> out(2);
  layernorm(z, alpha, beta, out, 0.0);
  // normalized = {1, -1}; affine: 2*{1,-1}+10 = {12, 8}.
  EXPECT_NEAR(out[0], 12.0f, 1e-5f);
  EXPECT_NEAR(out[1], 8.0f, 1e-5f);
}

TEST(LayerNorm, EpsPreventsDivByZero) {
  std::vector<float> z(8, 5.0f);  // zero variance
  std::vector<float> out(8);
  layernorm(z, {}, {}, out, 1e-5);
  for (const float v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST(LayerNorm, ScaleInvarianceOfDirection) {
  // LayerNorm(c*z) == LayerNorm(z) for c > 0 (scale invariance).
  common::Rng rng(2);
  std::vector<float> z(64);
  rng.fill_gaussian(z, 0.0, 1.0);
  std::vector<float> z2(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) z2[i] = 7.5f * z[i];
  std::vector<float> out1(z.size()), out2(z.size());
  layernorm(z, {}, {}, out1, 0.0);
  layernorm(z2, {}, {}, out2, 0.0);
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_NEAR(out1[i], out2[i], 1e-4f);
}

TEST(RmsNorm, PreservesDirectionOnly) {
  std::vector<float> z{3.0f, 4.0f};
  std::vector<float> out(2);
  rmsnorm(z, {}, {}, out, 0.0);
  // rms = sqrt(12.5); out = z / rms.
  const double rms = std::sqrt(12.5);
  EXPECT_NEAR(out[0], 3.0 / rms, 1e-6);
  EXPECT_NEAR(out[1], 4.0 / rms, 1e-6);
}

TEST(RmsNorm, DoesNotRecenter) {
  std::vector<float> z{10.0f, 12.0f};  // nonzero mean
  std::vector<float> out(2);
  rmsnorm(z, {}, {}, out, 0.0);
  // Output mean stays positive: RMSNorm does not subtract the mean.
  EXPECT_GT(out[0] + out[1], 0.0f);
  // Output RMS is 1.
  const VectorStats stats = exact_stats(out);
  EXPECT_NEAR(stats.rms, 1.0, 1e-6);
}

TEST(NormWithIsd, ExternalIsdMatchesInternal) {
  common::Rng rng(3);
  std::vector<float> z(128);
  rng.fill_gaussian(z, 1.0, 2.0);
  const VectorStats stats = exact_stats(z);
  const double isd = 1.0 / std::sqrt(stats.variance);
  std::vector<float> a(z.size()), b(z.size());
  layernorm(z, {}, {}, a, 0.0);
  layernorm_with_isd(z, stats.mean, isd, {}, {}, b);
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-5f);
}

TEST(NormWithIsd, RmsVariant) {
  common::Rng rng(4);
  std::vector<float> z(64);
  rng.fill_gaussian(z, 0.0, 3.0);
  const VectorStats stats = exact_stats(z);
  std::vector<float> a(z.size()), b(z.size());
  rmsnorm(z, {}, {}, a, 0.0);
  rmsnorm_with_isd(z, 1.0 / stats.rms, {}, {}, b);
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-5f);
}

TEST(NormRef, MatchesPaperEquation1) {
  // s = alpha * (z - mu) / sigma + beta computed by hand for a tiny case.
  std::vector<float> z{2.0f, 4.0f, 6.0f};  // mu=4, var=8/3
  std::vector<float> alpha{1.0f, 2.0f, 3.0f};
  std::vector<float> beta{0.5f, 0.5f, 0.5f};
  std::vector<float> out(3);
  layernorm(z, alpha, beta, out, 0.0);
  const double sigma = std::sqrt(8.0 / 3.0);
  EXPECT_NEAR(out[0], 1.0 * (2.0 - 4.0) / sigma + 0.5, 1e-5);
  EXPECT_NEAR(out[1], 0.5, 1e-5);
  EXPECT_NEAR(out[2], 3.0 * (6.0 - 4.0) / sigma + 0.5, 1e-5);
}

class NormLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NormLengthSweep, LayerNormStatsInvariantAcrossLengths) {
  common::Rng rng(GetParam());
  std::vector<float> z(GetParam());
  rng.fill_gaussian(z, -2.0, 0.5);
  std::vector<float> out(z.size());
  layernorm(z, {}, {}, out, 0.0);
  const VectorStats stats = exact_stats(out);
  EXPECT_NEAR(stats.mean, 0.0, 1e-5);
  EXPECT_NEAR(stats.variance, 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Lengths, NormLengthSweep,
                         ::testing::Values(2u, 3u, 16u, 128u, 1024u, 4096u));

}  // namespace
}  // namespace haan::tensor
