#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace haan::tensor {
namespace {

TEST(Matmul, SmallKnownProduct) {
  const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, IdentityPreserves) {
  common::Rng rng(1);
  const Tensor a = Tensor::randn(Shape{4, 4}, rng);
  Tensor eye(Shape{4, 4});
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  const Tensor c = matmul(a, eye);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(c.at(i), a.at(i));
}

TEST(Linear, MatchesMatmulWithTransposedWeights) {
  common::Rng rng(2);
  const Tensor x = Tensor::randn(Shape{3, 5}, rng);
  const Tensor w = Tensor::randn(Shape{4, 5}, rng);  // (out x in)
  const Tensor y = linear(x, w, {});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t o = 0; o < 4; ++o) {
      EXPECT_NEAR(y.at(i, o), dot(x.row(i), w.row(o)), 1e-4);
    }
  }
}

TEST(Linear, BiasApplied) {
  const Tensor x(Shape{1, 2}, {1.0f, 1.0f});
  const Tensor w(Shape{2, 2}, {1, 0, 0, 1});
  const std::vector<float> bias{10.0f, 20.0f};
  const Tensor y = linear(x, w, bias);
  EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 21.0f);
}

TEST(Softmax, RowsSumToOne) {
  common::Rng rng(3);
  Tensor t = Tensor::randn(Shape{5, 16}, rng, 0.0, 3.0);
  softmax_rows(t);
  for (std::size_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (const float v : t.row(r)) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  Tensor t(Shape{1, 3}, {1000.0f, 1000.0f, 1000.0f});
  softmax_rows(t);
  for (const float v : t.row(0)) EXPECT_NEAR(v, 1.0f / 3.0f, 1e-6f);
}

TEST(CausalSoftmax, MasksFuture) {
  common::Rng rng(4);
  Tensor scores = Tensor::randn(Shape{4, 4}, rng);
  causal_softmax(scores);
  for (std::size_t i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 4; ++j) {
      if (j > i) {
        EXPECT_EQ(scores.at(i, j), 0.0f);
      } else {
        sum += scores.at(i, j);
      }
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(CausalSoftmax, FirstRowIsDelta) {
  common::Rng rng(5);
  Tensor scores = Tensor::randn(Shape{3, 3}, rng);
  causal_softmax(scores);
  EXPECT_FLOAT_EQ(scores.at(0, 0), 1.0f);
}

TEST(Gelu, KnownValues) {
  Tensor t(Shape{3}, {0.0f, 100.0f, -100.0f});
  gelu_inplace(t);
  EXPECT_FLOAT_EQ(t.at(0), 0.0f);
  EXPECT_NEAR(t.at(1), 100.0f, 1e-3f);  // large positive ~ identity
  EXPECT_NEAR(t.at(2), 0.0f, 1e-3f);    // large negative ~ 0
}

TEST(Gelu, MidpointValue) {
  Tensor t(Shape{1}, {1.0f});
  gelu_inplace(t);
  EXPECT_NEAR(t.at(0), 0.8412f, 1e-3f);  // tanh-approx GELU(1)
}

TEST(Silu, KnownValues) {
  Tensor t(Shape{3}, {0.0f, 10.0f, -10.0f});
  silu_inplace(t);
  EXPECT_FLOAT_EQ(t.at(0), 0.0f);
  EXPECT_NEAR(t.at(1), 10.0f, 1e-3f);
  EXPECT_NEAR(t.at(2), 0.0f, 1e-3f);
}

TEST(Elementwise, AddScaleHadamard) {
  Tensor a(Shape{3}, {1, 2, 3});
  const Tensor b(Shape{3}, {10, 20, 30});
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a.at(2), 33.0f);
  scale_inplace(a, 0.5f);
  EXPECT_FLOAT_EQ(a.at(0), 5.5f);
  const Tensor h = hadamard(a, b);
  EXPECT_FLOAT_EQ(h.at(1), 220.0f);
}

TEST(Reductions, MeanRows) {
  const Tensor t(Shape{2, 3}, {1, 2, 3, 3, 4, 5});
  const auto mean = mean_rows(t);
  EXPECT_FLOAT_EQ(mean[0], 2.0f);
  EXPECT_FLOAT_EQ(mean[1], 3.0f);
  EXPECT_FLOAT_EQ(mean[2], 4.0f);
}

TEST(Reductions, ArgmaxFirstOnTies) {
  const std::vector<float> v{1.0f, 5.0f, 5.0f, 2.0f};
  EXPECT_EQ(argmax(v), 1u);
}

TEST(VectorOps, DotAndNorm) {
  const std::vector<float> a{3.0f, 4.0f};
  const std::vector<float> b{1.0f, 0.0f};
  EXPECT_DOUBLE_EQ(dot(a, b), 3.0);
  EXPECT_DOUBLE_EQ(l2_norm(a), 5.0);
}

TEST(VectorOps, NormalizeToUnit) {
  std::vector<float> v{3.0f, 4.0f};
  l2_normalize(v);
  EXPECT_NEAR(l2_norm(v), 1.0, 1e-6);
  EXPECT_FLOAT_EQ(v[0], 0.6f);
}

TEST(VectorOps, NormalizeZeroVectorUntouched) {
  std::vector<float> v{0.0f, 0.0f};
  l2_normalize(v);
  EXPECT_EQ(v[0], 0.0f);
}

TEST(VectorOps, ErrorMetrics) {
  const std::vector<float> a{1.0f, 2.0f};
  const std::vector<float> b{1.5f, 2.0f};
  EXPECT_DOUBLE_EQ(max_abs_error(a, b), 0.5);
  EXPECT_NEAR(rms_error(a, b), 0.5 / std::sqrt(2.0), 1e-12);
}

/// Property: matmul is associative-with-scaling and distributes over add.
class MatmulProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatmulProperty, DistributesOverAddition) {
  const std::size_t n = GetParam();
  common::Rng rng(n);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  const Tensor c = Tensor::randn(Shape{n, n}, rng);
  Tensor b_plus_c = b;
  add_inplace(b_plus_c, c);
  const Tensor lhs = matmul(a, b_plus_c);
  Tensor rhs = matmul(a, b);
  add_inplace(rhs, matmul(a, c));
  EXPECT_LT(max_abs_error(lhs.data(), rhs.data()), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulProperty, ::testing::Values(1u, 3u, 8u, 17u));

}  // namespace
}  // namespace haan::tensor
