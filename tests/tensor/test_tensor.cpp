#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace haan::tensor {
namespace {

TEST(Shape, Basics) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.dim(0), 2u);
  EXPECT_EQ(s.dim(2), 4u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, EmptyShape) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 0u);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 3});
  for (const float v : t.data()) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(t.numel(), 9u);
}

TEST(Tensor, AdoptData) {
  Tensor t(Shape{2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(Tensor, RowMajorLayout) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.at(5), 7.0f);  // flat index row*cols + col = 5
}

TEST(Tensor, Rank3Access) {
  Tensor t(Shape{2, 3, 4});
  t.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(t.at((1 * 3 + 2) * 4 + 3), 9.0f);
  const auto vec = t.vector_at(1, 2);
  EXPECT_EQ(vec.size(), 4u);
  EXPECT_EQ(vec[3], 9.0f);
}

TEST(Tensor, RowView) {
  Tensor t(Shape{3, 4});
  auto row = t.row(1);
  row[0] = 5.0f;
  EXPECT_EQ(t.at(1, 0), 5.0f);
  EXPECT_EQ(row.size(), 4u);
}

TEST(Tensor, RandnMoments) {
  common::Rng rng(1);
  const Tensor t = Tensor::randn(Shape{100, 100}, rng, 1.0, 2.0);
  double sum = 0.0, sum_sq = 0.0;
  for (const float v : t.data()) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(t.numel());
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(sum_sq / n - mean * mean, 4.0, 0.15);
}

TEST(Tensor, Full) {
  const Tensor t = Tensor::full(Shape{4}, 2.5f);
  for (const float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, Reshape) {
  Tensor t(Shape{2, 6}, std::vector<float>(12, 1.0f));
  const Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), Shape({3, 4}));
  EXPECT_EQ(r.numel(), 12u);
}

TEST(Tensor, ToStringTruncates) {
  Tensor t(Shape{100});
  const std::string s = t.to_string(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

using TensorDeath = Tensor;

TEST(TensorDeathTest, OutOfBoundsAborts) {
  Tensor t(Shape{2, 2});
  EXPECT_DEATH(t.at(2, 0), "precondition");
  EXPECT_DEATH(t.at(0, 2), "precondition");
}

TEST(TensorDeathTest, ShapeMismatchAborts) {
  EXPECT_DEATH(Tensor(Shape{2, 2}, std::vector<float>{1.0f}), "precondition");
}

}  // namespace
}  // namespace haan::tensor
