#include "baselines/gpu_runtime.hpp"

#include <gtest/gtest.h>

namespace haan::baselines {
namespace {

TEST(GpuRuntime, Figure1bGpt2OriginalShape) {
  // Paper Fig 1(b), GPT-2 original column: matmul ~57%, softmax ~15%,
  // normalization ~14-16%, others ~13%.
  const RuntimeBreakdown run = gpu_runtime_breakdown(
      model::real_dims_gpt2_117m(), 2048, /*optimized=*/false,
      gpt2_runtime_params());
  EXPECT_NEAR(run.matmul_fraction(), 0.572, 0.05);
  EXPECT_NEAR(run.softmax_fraction(), 0.149, 0.05);
  EXPECT_NEAR(run.norm_fraction(), 0.15, 0.04);
  EXPECT_NEAR(run.others_fraction(), 0.134, 0.05);
}

TEST(GpuRuntime, Figure1bGpt2OptimizedShape) {
  // After FlashAttention + FP8: normalization becomes the bottleneck-scale
  // component (>= 30% of runtime, paper: 33.9%).
  const RuntimeBreakdown run = gpu_runtime_breakdown(
      model::real_dims_gpt2_117m(), 2048, /*optimized=*/true,
      gpt2_runtime_params());
  EXPECT_GT(run.norm_fraction(), 0.30);
  EXPECT_LT(run.softmax_fraction(), 0.08);
  EXPECT_NEAR(run.matmul_fraction(), 0.393, 0.07);
}

TEST(GpuRuntime, Figure1bOptShapes) {
  const auto params = opt_runtime_params();
  const RuntimeBreakdown original = gpu_runtime_breakdown(
      model::real_dims_opt2p7b(), 2048, false, params);
  EXPECT_NEAR(original.matmul_fraction(), 0.522, 0.06);
  EXPECT_NEAR(original.norm_fraction(), 0.139, 0.05);
  const RuntimeBreakdown optimized = gpu_runtime_breakdown(
      model::real_dims_opt2p7b(), 2048, true, params);
  EXPECT_GT(optimized.norm_fraction(), 0.30);
}

TEST(GpuRuntime, OptimizationNeverTouchesNorm) {
  const auto params = gpt2_runtime_params();
  const RuntimeBreakdown original = gpu_runtime_breakdown(
      model::real_dims_gpt2_117m(), 2048, false, params);
  const RuntimeBreakdown optimized = gpu_runtime_breakdown(
      model::real_dims_gpt2_117m(), 2048, true, params);
  EXPECT_DOUBLE_EQ(original.norm_us, optimized.norm_us);
  EXPECT_LT(optimized.matmul_us, original.matmul_us);
  EXPECT_LT(optimized.softmax_us, original.softmax_us);
  EXPECT_LT(optimized.total_us(), original.total_us());
}

TEST(GpuRuntime, FractionsSumToOne) {
  for (const bool optimized : {false, true}) {
    const RuntimeBreakdown run = gpu_runtime_breakdown(
        model::real_dims_gpt2_117m(), 1024, optimized, gpt2_runtime_params());
    EXPECT_NEAR(run.matmul_fraction() + run.softmax_fraction() +
                    run.norm_fraction() + run.others_fraction(),
                1.0, 1e-9);
  }
}

TEST(GpuRuntime, LongerSequencesCostMore) {
  const auto params = gpt2_runtime_params();
  const double t1 =
      gpu_runtime_breakdown(model::real_dims_gpt2_117m(), 512, false, params)
          .total_us();
  const double t2 =
      gpu_runtime_breakdown(model::real_dims_gpt2_117m(), 2048, false, params)
          .total_us();
  EXPECT_GT(t2, 3.0 * t1);  // superlinear (attention is quadratic)
}

TEST(GpuRuntime, IsdShareAboveNinetyPercent) {
  // Paper §III-A: "ISD computation accounts for more than 90% of the overall
  // normalization runtime" on GPU.
  EXPECT_GT(isd_share_of_norm_runtime(4096, 128, gpt2_runtime_params()), 0.9);
  EXPECT_GT(isd_share_of_norm_runtime(1600, 512, gpt2_runtime_params()), 0.75);
}

}  // namespace
}  // namespace haan::baselines
