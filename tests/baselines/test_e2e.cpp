#include "baselines/e2e_model.hpp"

#include <gtest/gtest.h>

namespace haan::baselines {
namespace {

TEST(E2e, PaperSpeedupReproduced) {
  // Paper §V-B-2: GPT-2 355M on the [41] spatial system, input lengths
  // 128/256/512: average end-to-end speedup ~1.11x.
  double sum = 0.0;
  int count = 0;
  for (const std::size_t seq : {128u, 256u, 512u}) {
    const E2eResult result = e2e_speedup(model::real_dims_gpt2_355m(), seq,
                                         accel::haan_v1(), /*nsub=*/512,
                                         /*skipped=*/5);
    EXPECT_GT(result.e2e_speedup, 1.05) << seq;
    EXPECT_LT(result.e2e_speedup, 1.2) << seq;
    sum += result.e2e_speedup;
    ++count;
  }
  EXPECT_NEAR(sum / count, 1.11, 0.035);
}

TEST(E2e, InternalConsistency) {
  const E2eResult result = e2e_speedup(model::real_dims_gpt2_355m(), 256,
                                       accel::haan_v1(), 512, 5);
  EXPECT_GT(result.baseline_ms, result.haan_ms);
  EXPECT_NEAR(result.e2e_speedup, result.baseline_ms / result.haan_ms, 1e-12);
  EXPECT_GT(result.norm_fraction, 0.0);
  EXPECT_LT(result.norm_fraction, 1.0);
  EXPECT_GT(result.norm_speedup, 1.0);
}

TEST(E2e, AmdahlBound) {
  // End-to-end speedup can never exceed 1 / (1 - norm_fraction).
  const E2eResult result = e2e_speedup(model::real_dims_gpt2_355m(), 128,
                                       accel::haan_v1(), 512, 5);
  EXPECT_LT(result.e2e_speedup, 1.0 / (1.0 - result.norm_fraction) + 1e-9);
}

TEST(E2e, FasterHostSystemShrinksGain) {
  SpatialSystemParams fast;
  fast.effective_tops = 40.0;  // much faster matmul engine -> norm dominates
  const E2eResult fast_host = e2e_speedup(model::real_dims_gpt2_355m(), 256,
                                          accel::haan_v1(), 512, 5, fast);
  SpatialSystemParams slow;
  slow.effective_tops = 3.0;
  const E2eResult slow_host = e2e_speedup(model::real_dims_gpt2_355m(), 256,
                                          accel::haan_v1(), 512, 5, slow);
  EXPECT_GT(fast_host.e2e_speedup, slow_host.e2e_speedup);
}

}  // namespace
}  // namespace haan::baselines
