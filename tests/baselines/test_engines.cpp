#include <gtest/gtest.h>

#include "baselines/dfx_engine.hpp"
#include "baselines/gpu_engine.hpp"
#include "baselines/haan_engine.hpp"
#include "baselines/mhaa_engine.hpp"
#include "baselines/sole_engine.hpp"

namespace haan::baselines {
namespace {

NormWorkload gpt2_workload(std::size_t seq) {
  // Paper Fig 9 setting: 10 of 97 layers skipped, nsub = N/2.
  return make_workload(model::real_dims_gpt2_1p5b(), seq, 10, 800,
                       model::NormKind::kLayerNorm);
}

NormWorkload opt_workload(std::size_t seq) {
  // Paper Fig 8(b) setting: 7 of 65 skipped, input truncated to 1280.
  return make_workload(model::real_dims_opt2p7b(), seq, 7, 1280,
                       model::NormKind::kLayerNorm);
}

TEST(Workload, TotalVectors) {
  const NormWorkload work = gpt2_workload(128);
  EXPECT_EQ(work.total_vectors(), 97u * 128u);
  EXPECT_EQ(work.embedding_dim, 1600u);
}

TEST(HaanEngine, LatencyScalesWithSequence) {
  const HaanEngine engine(accel::haan_v1());
  const double lat128 = engine.total_latency_us(gpt2_workload(128));
  const double lat1024 = engine.total_latency_us(gpt2_workload(1024));
  EXPECT_GT(lat1024, lat128 * 6.0);
  EXPECT_LT(lat1024, lat128 * 9.0);  // roughly linear
}

TEST(HaanEngine, SkippedLayersReduceLatencyAndPower) {
  const HaanEngine engine(accel::haan_v1());
  NormWorkload with_skip = opt_workload(256);
  NormWorkload no_skip = with_skip;
  no_skip.skipped_layers = 0;
  EXPECT_LE(engine.total_latency_us(with_skip),
            engine.total_latency_us(no_skip));
  EXPECT_LT(engine.average_power_w(with_skip), engine.average_power_w(no_skip));
}

TEST(GpuEngine, PerKernelGranularity) {
  const GpuNormEngine gpu;
  const NormWorkload work = gpt2_workload(128);
  const double latency = gpu.total_latency_us(work);
  // Must exceed pure overhead * kernel count.
  EXPECT_GT(latency, 0.9 * static_cast<double>(work.total_vectors()));
}

TEST(Figure9, Gpt2RelativeLatencies) {
  // Paper Fig 9 / §V-B: vs HAAN-v1 on GPT2-1.5B —
  //   DFX ~11.7x, GPU ~10.5x, SOLE ~1.25x, MHAA ~2.42x, HAAN-v2 ~1.03-1.05x.
  const HaanEngine v1(accel::haan_v1());
  const HaanEngine v2(accel::haan_v2());
  const GpuNormEngine gpu;
  const DfxEngine dfx;
  const SoleEngine sole;
  const MhaaEngine mhaa;

  for (const std::size_t seq : {128u, 256u, 512u, 1024u}) {
    const NormWorkload work = gpt2_workload(seq);
    const double base = v1.total_latency_us(work);
    EXPECT_NEAR(dfx.total_latency_us(work) / base, 11.7, 3.0) << seq;
    EXPECT_NEAR(gpu.total_latency_us(work) / base, 10.5, 3.0) << seq;
    EXPECT_NEAR(sole.total_latency_us(work) / base, 1.35, 0.35) << seq;
    EXPECT_NEAR(mhaa.total_latency_us(work) / base, 2.4, 0.8) << seq;
    EXPECT_NEAR(v2.total_latency_us(work) / base, 1.0, 0.1) << seq;
  }
}

TEST(Figure8b, OptRelativeLatencies) {
  // Paper Fig 8(b): on OPT-2.7B — GPU ~10x, SOLE ~1.57x, MHAA ~1.62x,
  // HAAN-v3 ~ HAAN-v1.
  const HaanEngine v1(accel::haan_v1());
  const HaanEngine v3(accel::haan_v3());
  const GpuNormEngine gpu;
  const SoleEngine sole;
  const MhaaEngine mhaa;

  for (const std::size_t seq : {128u, 512u}) {
    const NormWorkload work = opt_workload(seq);
    const double base = v1.total_latency_us(work);
    EXPECT_NEAR(gpu.total_latency_us(work) / base, 10.0, 3.0) << seq;
    EXPECT_NEAR(sole.total_latency_us(work) / base, 1.5, 0.5) << seq;
    EXPECT_NEAR(mhaa.total_latency_us(work) / base, 2.0, 0.8) << seq;
    EXPECT_NEAR(v3.total_latency_us(work) / base, 1.0, 0.1) << seq;
  }
}

TEST(Figure8a, PowerOrdering) {
  // Paper: HAAN uses ~61-64% less power than DFX and slightly less than
  // SOLE/MHAA.
  const HaanEngine v1(accel::haan_v1());
  const DfxEngine dfx;
  const SoleEngine sole;
  const MhaaEngine mhaa;
  const NormWorkload work = gpt2_workload(256);

  const double haan_power = v1.average_power_w(work);
  const double reduction_vs_dfx = 1.0 - haan_power / dfx.average_power_w(work);
  EXPECT_NEAR(reduction_vs_dfx, 0.625, 0.08);
  EXPECT_LT(haan_power, sole.average_power_w(work));
  EXPECT_LT(haan_power, mhaa.average_power_w(work));
  // But in the same ballpark (paper: "slightly less").
  EXPECT_GT(haan_power, 0.6 * sole.average_power_w(work));
}

TEST(Engines, EnergyIsPowerTimesLatency) {
  const SoleEngine sole;
  const NormWorkload work = gpt2_workload(128);
  EXPECT_DOUBLE_EQ(sole.total_energy_uj(work),
                   sole.total_latency_us(work) * sole.average_power_w(work));
}

TEST(Engines, NamesAreStable) {
  EXPECT_EQ(HaanEngine(accel::haan_v1()).name(), "HAAN-v1");
  EXPECT_EQ(GpuNormEngine().name(), "GPU");
  EXPECT_EQ(DfxEngine().name(), "DFX");
  EXPECT_EQ(SoleEngine().name(), "SOLE");
  EXPECT_EQ(MhaaEngine().name(), "MHAA");
}

class EngineMonotonicity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineMonotonicity, AllEnginesMonotoneInSequenceLength) {
  const std::size_t seq = GetParam();
  const HaanEngine v1(accel::haan_v1());
  const GpuNormEngine gpu;
  const DfxEngine dfx;
  const SoleEngine sole;
  const MhaaEngine mhaa;
  const NormWorkload small = gpt2_workload(seq);
  const NormWorkload large = gpt2_workload(seq * 2);
  for (const NormEngineModel* engine :
       std::initializer_list<const NormEngineModel*>{&v1, &gpu, &dfx, &sole, &mhaa}) {
    EXPECT_LT(engine->total_latency_us(small), engine->total_latency_us(large))
        << engine->name();
  }
}

INSTANTIATE_TEST_SUITE_P(SeqLens, EngineMonotonicity,
                         ::testing::Values(64u, 128u, 512u));

}  // namespace
}  // namespace haan::baselines
