// Serving quickstart: stand up the batched multi-threaded inference server on
// the tiny test model, replay a short Poisson workload twice — once with
// exact normalization, once with the HAAN provider — and compare latency,
// throughput and the norm-path work the HAAN optimizations elide.
//
//   ./build/examples/serving_quickstart
#include <cstdio>

#include "kernels/kernels.hpp"
#include "serve/server.hpp"

using namespace haan;

namespace {

serve::ServeReport serve_once(const std::string& norm,
                              const std::vector<serve::Request>& workload) {
  serve::ServerConfig config;
  config.model = model::tiny_test_model();
  config.norm = norm;
  config.workers = 4;
  config.scheduler.max_batch = 4;
  config.scheduler.max_wait = std::chrono::microseconds(500);
  config.calibration.n_samples = 8;
  config.calibration.seq_len = 16;
  config.calibration.position_stride = 4;
  config.calibration.planner.min_gap = 4;

  serve::Server server(config);
  std::printf("--- norm=%s (4 workers, max batch 4) ---\n", norm.c_str());
  const auto report = server.run(workload);
  std::printf("%s\n", report.metrics.to_string().c_str());
  return report;
}

}  // namespace

int main() {
  // 256 requests, steady Poisson arrivals at 2000 req/s, prompts of 8-24
  // tokens — a miniature of the serve_throughput bench.
  serve::WorkloadConfig workload_config;
  workload_config.n_requests = 256;
  workload_config.rate_rps = 2000.0;
  workload_config.min_prompt = 8;
  workload_config.max_prompt = 24;
  workload_config.vocab_size = model::tiny_test_model().vocab_size;
  workload_config.seed = 1;
  const auto workload = serve::generate_workload(workload_config);
  std::printf("norm kernels: %s dispatch\n", kernels::active_name());
  std::printf("workload: %zu requests over %.2f s (steady Poisson)\n\n",
              workload.size(), workload.back().arrival_us / 1e6);

  const auto exact = serve_once("exact", workload);
  const auto haan = serve_once("haan", workload);

  const auto& counters = haan.metrics.norm;
  std::printf("HAAN norm-path work on this workload:\n");
  std::printf("  norm calls      : %zu\n", counters.norm_calls);
  std::printf("  ISD predicted   : %zu of %zu (skipped square-root inverter)\n",
              counters.isd_predicted,
              counters.isd_computed + counters.isd_predicted);
  std::printf("  p50 latency     : exact %.3f ms vs haan %.3f ms\n",
              exact.metrics.total.p50_us / 1000.0,
              haan.metrics.total.p50_us / 1000.0);
  return 0;
}
