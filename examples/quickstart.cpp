// Quickstart: normalize a vector three ways —
//   1. exact reference LayerNorm,
//   2. the HAAN algorithm (subsampled statistics + fast inverse sqrt),
//   3. the bit-accurate HAAN accelerator datapath with cycle/energy costs.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "accel/accelerator.hpp"
#include "common/rng.hpp"
#include "core/provider_factory.hpp"
#include "kernels/kernels.hpp"
#include "tensor/norm_ref.hpp"
#include "tensor/ops.hpp"

using namespace haan;

int main() {
  std::printf("norm kernels: %s dispatch (HAAN_FORCE_SCALAR=1 forces scalar)\n",
              kernels::active_name());
  // A batch of 4 activation vectors of width 1024, like one token batch
  // hitting a normalization layer.
  constexpr std::size_t kVectors = 4;
  constexpr std::size_t kWidth = 1024;
  common::Rng rng(1);
  const tensor::Tensor batch =
      tensor::Tensor::randn(tensor::Shape{kVectors, kWidth}, rng, 0.3, 2.0);

  // 1. Reference: exact LayerNorm (double-precision internals).
  std::vector<float> reference(kWidth);
  tensor::layernorm(batch.row(0), {}, {}, reference);

  // 2. HAAN algorithm via the shared provider factory: subsampled statistics
  //    in FP16, ISD via the 0x5F3759DF inverse-sqrt with one Newton step.
  core::ProviderOptions options;
  options.width = kWidth;
  const core::HaanConfig config = core::resolve_haan_config("haan-fp16", options);
  const auto provider = core::make_norm_provider("haan-fp16", options);
  provider->begin_sequence();
  std::vector<float> approx(kWidth);
  provider->normalize(/*layer=*/0, /*position=*/0, model::NormKind::kLayerNorm,
                      batch.row(0), {}, {}, approx);

  std::printf("HAAN vs reference LayerNorm (width %zu, Nsub %zu):\n", kWidth,
              config.nsub);
  std::printf("  rms error      : %.5f\n",
              tensor::rms_error(approx, reference));
  std::printf("  max abs error  : %.5f\n",
              tensor::max_abs_error(approx, reference));
  std::printf("  elements read  : %zu of %zu (statistics path)\n",
              core::as_haan_provider(provider.get())->counters().elements_read,
              kWidth);

  // 3. The accelerator: same computation with cycle and energy accounting.
  const accel::HaanAccelerator accelerator(accel::haan_v1());
  const auto run = accelerator.run_layer(batch, {}, {}, model::NormKind::kLayerNorm,
                                         config.nsub);
  std::printf("\nHAAN-v1 accelerator on the %zu-vector batch:\n", kVectors);
  std::printf("  per-vector stages : %s\n", run.cycles.per_vector.to_string().c_str());
  std::printf("  total cycles      : %zu (%.2f us @ 100 MHz)\n", run.cycles.cycles,
              run.cycles.latency_us(accelerator.config()));
  std::printf("  power / energy    : %.2f W / %.3f uJ\n", run.power_w,
              run.energy_uj);
  std::printf("  datapath rms err  : %.5f (vs reference)\n",
              tensor::rms_error(run.output.row(0), reference));
  const auto resources = accelerator.resources();
  std::printf("  resources         : %s\n", resources.to_string().c_str());
  return 0;
}
