// ISD study: reproduce the paper's §III-A analysis on any surrogate model —
// collect the per-layer ISD trace, run Algorithm 1, optionally persist the
// plan to JSON for later evaluation runs.
//
//   ./build/examples/isd_study --model llama --width 128 --plan-out plan.json
#include <cmath>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "core/calibration.hpp"

using namespace haan;

int main(int argc, char** argv) {
  common::CliParser cli("ISD trend study + Algorithm 1 skip planning");
  cli.add_flag("model", "llama", "llama | opt | gpt2");
  cli.add_flag("width", "128", "surrogate embedding width");
  cli.add_flag("samples", "8", "calibration sequences");
  cli.add_flag("seq", "16", "tokens per sequence");
  cli.add_flag("min-gap", "8", "Algorithm 1 minimum window size M");
  cli.add_flag("plan-out", "", "write the plan JSON to this path (optional)");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  const std::string name = cli.get("model");
  const auto width = static_cast<std::size_t>(cli.get_int("width"));
  model::ModelConfig config = name == "opt" ? model::opt2p7b_surrogate(width)
                              : name == "gpt2" ? model::gpt2_1p5b_surrogate(width)
                                               : model::llama7b_surrogate(width);
  model::Transformer model(config);

  core::CalibrationOptions options;
  options.n_samples = static_cast<std::size_t>(cli.get_int("samples"));
  options.seq_len = static_cast<std::size_t>(cli.get_int("seq"));
  options.position_stride = 4;
  options.planner.min_gap = static_cast<std::size_t>(cli.get_int("min-gap"));
  const auto result = core::calibrate_skip_plan(model, options);

  // ASCII profile of the mean log10 ISD.
  const auto series = result.trace.mean_log_isd();
  double lo = series[0], hi = series[0];
  for (const double v : series) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::printf("%s: mean log10(ISD) per normalization layer\n", config.name.c_str());
  for (std::size_t layer = 0; layer < series.size(); ++layer) {
    const double t = (series[layer] - lo) / (hi - lo + 1e-12);
    const int bars = static_cast<int>(t * 60);
    const bool in_window = result.plan.enabled && layer >= result.plan.start &&
                           layer <= result.plan.end;
    std::printf("%3zu %7.3f |%.*s%s\n", layer, series[layer] / std::log(10.0), bars,
                "############################################################",
                in_window ? "  <- skip window" : "");
  }
  std::printf("\nplan: %s\n", result.plan.to_string().c_str());
  std::printf("per-layer ISD prediction slope e = %.5f (natural log domain)\n",
              result.plan.decay);

  const std::string plan_out = cli.get("plan-out");
  if (!plan_out.empty()) {
    if (core::save_skip_plan(result.plan, plan_out)) {
      std::printf("plan written to %s\n", plan_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", plan_out.c_str());
      return 1;
    }
  }
  return 0;
}
