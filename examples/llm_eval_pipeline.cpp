// Full pipeline walk-through: calibrate a skip plan on a surrogate LLM,
// configure HAAN, evaluate a downstream task against the exact baseline, and
// report the hardware-side savings for the same workload.
//
//   ./build/examples/llm_eval_pipeline --model llama --examples 150
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/haan_engine.hpp"
#include "common/cli.hpp"
#include "core/calibration.hpp"
#include "core/provider_factory.hpp"
#include "eval/evaluator.hpp"
#include "eval/perplexity.hpp"

using namespace haan;

int main(int argc, char** argv) {
  common::CliParser cli("calibrate -> configure -> evaluate pipeline");
  cli.add_flag("model", "llama",
               "llama7b | opt2.7b | gpt2-1.5b (aliases: llama, opt, gpt2)");
  cli.add_flag("width", "128", "surrogate embedding width");
  cli.add_flag("examples", "150", "examples for the task evaluation");
  cli.add_flag("task", "1", "task index 0..4 (WG, PQ, HS, A-e, A-c)");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  const std::string name = cli.get("model");
  const auto width = static_cast<std::size_t>(cli.get_int("width"));
  const auto selected = model::surrogate_by_name(name, width);
  // Only the three paper models have task suites and real-dims tables here.
  if (!selected || (selected->name != "LLaMA-7B" && selected->name != "OPT-2.7B" &&
                    selected->name != "GPT2-1.5B")) {
    std::fprintf(stderr,
                 "unsupported --model '%s' (this example supports "
                 "llama7b | opt2.7b | gpt2-1.5b)\n",
                 name.c_str());
    return 1;
  }
  const model::ModelConfig config = *selected;
  model::Transformer model(config);

  // Step 1: offline calibration (Algorithm 1 on a synthetic corpus).
  std::printf("[1/4] calibrating skip plan on %s ...\n", config.name.c_str());
  core::CalibrationOptions cal;
  cal.n_samples = 8;
  cal.seq_len = 16;
  cal.position_stride = 4;
  const auto calibration = core::calibrate_skip_plan(model, cal);

  // Step 2: configure the HAAN algorithm via the shared provider factory,
  // which resolves "haan" to the paper defaults for the model.
  core::ProviderOptions provider_options;
  provider_options.width = config.d_model;  // the resolved width, not the flag
  provider_options.model_name = config.name;
  provider_options.plan = calibration.plan;
  std::printf("[2/4] configuration: %s\n",
              core::resolve_haan_config("haan", provider_options).to_string().c_str());

  // Step 3: accuracy against the exact baseline.
  auto task = eval::task_suite_for(config.name)
      [static_cast<std::size_t>(cli.get_int("task")) % 5];
  task.context_len = 10;
  const auto n = static_cast<std::size_t>(cli.get_int("examples"));
  std::printf("[3/4] evaluating %s on %zu examples ...\n", task.name.c_str(), n);
  const auto dataset = eval::TaskDataset::generate(model, task, n);
  const auto result = eval::evaluate_accuracy_parallel(
      model, [&] { return core::make_norm_provider("haan", provider_options); },
      dataset, 0);
  std::printf("      original %.4f | HAAN %.4f | decision flips %zu/%zu\n",
              dataset.baseline_accuracy(), result.accuracy,
              result.flips_vs_baseline, result.n_examples);

  const auto corpus = core::random_token_corpus(config.vocab_size, 4, 12, 3);
  const auto ppl_provider = core::make_norm_provider("haan", provider_options);
  std::printf("      pseudo-perplexity ratio vs exact: %.4f\n",
              eval::pseudo_ppl_ratio(model, *ppl_provider, corpus));

  // Step 4: what the accelerator gains from this plan on the real dims.
  const model::RealDims dims = config.name == "OPT-2.7B"
                                   ? model::real_dims_opt2p7b()
                               : config.name == "GPT2-1.5B"
                                   ? model::real_dims_gpt2_1p5b()
                                   : model::real_dims_llama7b();
  const baselines::HaanEngine engine(accel::haan_v1());
  const auto with_skip = baselines::make_workload(
      dims, 256, calibration.plan.skipped_count(), dims.d_model / 2,
      config.norm_kind);
  auto without = with_skip;
  without.skipped_layers = 0;
  without.nsub = 0;
  std::printf(
      "[4/4] HAAN-v1 on the real %s dims (seq 256):\n"
      "      plain        : %.2f ms, %.2f W\n"
      "      skip+subsample: %.2f ms, %.2f W  (energy x%.2f lower)\n",
      config.name.c_str(), engine.total_latency_us(without) / 1e3,
      engine.average_power_w(without), engine.total_latency_us(with_skip) / 1e3,
      engine.average_power_w(with_skip),
      engine.total_energy_uj(without) / engine.total_energy_uj(with_skip));
  return 0;
}
