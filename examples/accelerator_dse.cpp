// Design-space exploration: sweep (pd, pn, format) configurations of the HAAN
// accelerator for a given normalization workload and print the
// latency/power/resource trade-offs with Pareto-front markers.
//
//   ./build/examples/accelerator_dse --model opt --seq 256
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/haan_engine.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

// GCC 12 false-positive -Wrestrict on inlined std::string concatenation
// (GCC bug 105651).
#pragma GCC diagnostic ignored "-Wrestrict"

using namespace haan;

int main(int argc, char** argv) {
  common::CliParser cli("HAAN accelerator design-space exploration");
  cli.add_flag("model", "gpt2", "llama | opt | gpt2 (real dims)");
  cli.add_flag("seq", "256", "sequence length");
  cli.add_flag("skipped", "10", "layers with predicted ISD");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  const std::string name = cli.get("model");
  const model::RealDims dims = name == "llama" ? model::real_dims_llama7b()
                               : name == "opt" ? model::real_dims_opt2p7b()
                                               : model::real_dims_gpt2_1p5b();
  const model::NormKind kind =
      name == "llama" ? model::NormKind::kRMSNorm : model::NormKind::kLayerNorm;
  const auto work = baselines::make_workload(
      dims, static_cast<std::size_t>(cli.get_int("seq")),
      static_cast<std::size_t>(cli.get_int("skipped")), dims.d_model / 2, kind);

  struct Point {
    std::string label;
    double latency_us;
    double power_w;
    double dsp;
    double lut;
  };
  std::vector<Point> points;
  for (const auto format :
       {numerics::NumericFormat::kFP32, numerics::NumericFormat::kFP16,
        numerics::NumericFormat::kBF16, numerics::NumericFormat::kINT8}) {
    for (const std::size_t pd : {32u, 64u, 128u, 256u}) {
      for (const std::size_t pn : {64u, 128u, 256u, 512u}) {
        if (pn < pd) continue;  // the NU must at least keep up with the ISC
        accel::AcceleratorConfig config;
        config.name = numerics::to_string(format) + "(" + std::to_string(pd) +
                      "," + std::to_string(pn) + ")";
        config.pd = pd;
        config.pn = pn;
        config.io_format = format;
        const baselines::HaanEngine engine(config);
        const auto resources = accel::estimate_resources(config);
        points.push_back({config.name, engine.total_latency_us(work),
                          engine.average_power_w(work), resources.dsp,
                          resources.lut});
      }
    }
  }

  // Pareto front on (latency, power).
  const auto dominated = [&](const Point& p) {
    for (const auto& q : points) {
      if (q.latency_us < p.latency_us && q.power_w < p.power_w) return true;
    }
    return false;
  };

  common::Table table({"config", "latency (ms)", "power (W)", "DSP", "LUT",
                       "pareto"});
  for (const auto& p : points) {
    table.add_row({p.label, common::format_double(p.latency_us / 1e3, 3),
                   common::format_double(p.power_w, 2),
                   common::format_count(static_cast<long long>(p.dsp)),
                   common::format_count(static_cast<long long>(p.lut)),
                   dominated(p) ? "" : "*"});
  }
  std::printf("=== Design-space exploration — %s norm workload, seq %lld ===\n%s",
              dims.d_model == 1600 ? "GPT2-1.5B" : name.c_str(),
              cli.get_int("seq"), table.render().c_str());
  std::printf("\n'*' marks the (latency, power) Pareto front. The paper's\n"
              "HAAN-v1 (128,128)/FP16 and HAAN-v2 (80,160)/FP16 sit on the\n"
              "balanced-stage part of this front.\n");
  return 0;
}
